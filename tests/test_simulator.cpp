#include "sim/simulator.hpp"

#include "sim/experiment.hpp"
#include "sim/slot_stepper.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "util/rng.hpp"

namespace origin::sim {
namespace {

/// Tiny untrained nets keep these tests fast; the simulator's energy and
/// scheduling mechanics are what is under test, not accuracy.
std::array<nn::Sequential, 3> tiny_models(const data::DatasetSpec& spec) {
  std::array<nn::Sequential, 3> models;
  for (int s = 0; s < 3; ++s) {
    util::Rng rng(100 + static_cast<std::uint64_t>(s));
    auto& m = models[static_cast<std::size_t>(s)];
    m.emplace<nn::Conv1D>(spec.channels, 2, 8, 4, rng)
        .emplace<nn::ReLU>()
        .emplace<nn::Flatten>()
        .emplace<nn::Dense>(2 * 15, spec.num_classes(), rng);
  }
  return models;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : spec_(data::dataset_spec(data::DatasetKind::MHealthLike)),
        trace_(energy::PowerTrace::generate_wifi_office({}, 11)),
        stream_(data::make_stream(spec_, 120, data::reference_user(), 12)) {}

  SimulatorConfig scaled_config(double ratio) {
    SimulatorConfig cfg;
    auto models = tiny_models(spec_);
    const auto cost = nn::estimate_cost(models[0],
                                        {spec_.channels, spec_.window_len},
                                        cfg.node.compute);
    net::Message msg;
    const double total = cost.energy_j + cfg.node.radio.tx_energy_j(msg);
    const double scale =
        calibrate_harvest_scale(total, trace_, cfg.harvester_efficiency,
                                spec_.slot_seconds(), ratio);
    for (auto& s : cfg.harvest_scale) s *= scale;
    return cfg;
  }

  data::DatasetSpec spec_;
  energy::PowerTrace trace_;
  data::Stream stream_;
};

TEST_F(SimulatorTest, ValidatesInputs) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  EXPECT_THROW(
      Simulator(spec_, tiny_models(spec_), nullptr, &policy, {}),
      std::invalid_argument);
  EXPECT_THROW(Simulator(spec_, tiny_models(spec_), &trace_, nullptr, {}),
               std::invalid_argument);
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, {});
  EXPECT_THROW(sim.run(data::Stream{}), std::invalid_argument);
}

TEST_F(SimulatorTest, OutputsOnePredictionPerSlot) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, scaled_config(6));
  const auto result = sim.run(stream_);
  EXPECT_EQ(result.outputs.size(), stream_.slots.size());
  EXPECT_EQ(result.accuracy.total(), stream_.slots.size());
  EXPECT_EQ(result.completion.slots, stream_.slots.size());
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(6)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, scaled_config(6));
  const auto a = sim.run(stream_);
  const auto b = sim.run(stream_);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.completion.completions, b.completion.completions);
}

TEST_F(SimulatorTest, CompletionAccountingConsistent) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(6)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, scaled_config(6));
  const auto r = sim.run(stream_);
  EXPECT_LE(r.completion.completions, r.completion.attempts);
  // RR6: one attempt every 2 slots.
  EXPECT_EQ(r.completion.attempts, stream_.slots.size() / 2);
  std::uint64_t node_attempts = 0, node_completions = 0;
  for (const auto& c : r.node_counters) {
    node_attempts += c.attempts;
    node_completions += c.completions;
  }
  EXPECT_EQ(node_attempts, r.completion.attempts);
  EXPECT_EQ(node_completions, r.completion.completions);
}

TEST_F(SimulatorTest, ScheduledCountsMatchRotation) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, scaled_config(6));
  const auto r = sim.run(stream_);
  // 120 slots, RR3: each sensor scheduled 40x.
  EXPECT_EQ(r.scheduled[0], 40u);
  EXPECT_EQ(r.scheduled[1], 40u);
  EXPECT_EQ(r.scheduled[2], 40u);
}

TEST_F(SimulatorTest, MoreHarvestMoreCompletions) {
  core::PlainRRPolicy p1{core::ExtendedRoundRobin(6)};
  core::PlainRRPolicy p2{core::ExtendedRoundRobin(6)};
  Simulator starved(spec_, tiny_models(spec_), &trace_, &p1, scaled_config(20));
  Simulator rich(spec_, tiny_models(spec_), &trace_, &p2, scaled_config(1));
  const auto r_starved = starved.run(stream_);
  const auto r_rich = rich.run(stream_);
  EXPECT_GT(r_rich.completion.completions, r_starved.completion.completions);
}

TEST_F(SimulatorTest, ExtendedCycleImprovesSuccessRate) {
  core::PlainRRPolicy rr3{core::ExtendedRoundRobin(3)};
  core::PlainRRPolicy rr12{core::ExtendedRoundRobin(12)};
  const auto cfg = scaled_config(6);
  const auto r3 =
      Simulator(spec_, tiny_models(spec_), &trace_, &rr3, cfg).run(stream_);
  const auto r12 =
      Simulator(spec_, tiny_models(spec_), &trace_, &rr12, cfg).run(stream_);
  EXPECT_GT(r12.completion.attempt_success_rate(),
            r3.completion.attempt_success_rate());
}

TEST_F(SimulatorTest, NaiveDeadlineMostlyFails) {
  core::NaiveAllPolicy naive(spec_.num_classes());
  Simulator sim(spec_, tiny_models(spec_), &trace_, &naive, scaled_config(6));
  const auto r = sim.run(stream_);
  // Fig. 1a shape: most slots complete nothing.
  EXPECT_GT(r.completion.pct_failed_slots(), 50.0);
  EXPECT_LT(r.completion.pct_all(), 20.0);
}

TEST_F(SimulatorTest, EnergyConservation) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(6)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, scaled_config(6));
  const auto r = sim.run(stream_);
  for (const auto& c : r.node_counters) {
    // A node cannot consume more than it harvested plus its initial charge
    // (initial charge <= capacitor capacity ~ headroom x cost; use a loose
    // bound via harvested + a generous constant).
    EXPECT_LE(c.consumed_j, c.harvested_j + 1e-3);
  }
}

TEST_F(SimulatorTest, InferenceEnergyReflectsModels) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, {});
  const auto costs = sim.inference_energy_j();
  for (double c : costs) EXPECT_GT(c, 0.0);
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.completion.attempts, b.completion.attempts);
  EXPECT_EQ(a.completion.completions, b.completion.completions);
  EXPECT_EQ(a.completion.slots_all_completed, b.completion.slots_all_completed);
  EXPECT_EQ(a.accuracy.overall(), b.accuracy.overall());
  for (std::size_t s = 0; s < a.node_counters.size(); ++s) {
    EXPECT_EQ(a.node_counters[s].attempts, b.node_counters[s].attempts);
    EXPECT_EQ(a.node_counters[s].completions, b.node_counters[s].completions);
    EXPECT_EQ(a.node_counters[s].skipped_no_energy,
              b.node_counters[s].skipped_no_energy);
    EXPECT_EQ(a.node_counters[s].died_midway, b.node_counters[s].died_midway);
    EXPECT_EQ(a.node_counters[s].consumed_j, b.node_counters[s].consumed_j);
  }
}

TEST_F(SimulatorTest, BatchedClassificationBitIdentical) {
  // In-shard batching must not change a single output, counter or joule,
  // under any execution model (eager NVP, deadline, wait-compute) or any
  // block size — including blocks that do not divide the stream length.
  const auto cfg = scaled_config(6);
  const auto run_with = [&](auto make_policy, int batch_slots) {
    auto policy = make_policy();
    SimulatorConfig c = cfg;
    c.batch_slots = batch_slots;
    return Simulator(spec_, tiny_models(spec_), &trace_, &policy, c)
        .run(stream_);
  };
  const auto eager = [&] {
    return core::PlainRRPolicy{core::ExtendedRoundRobin(6)};
  };
  const auto deadline = [&] {
    return core::NaiveAllPolicy(spec_.num_classes());
  };
  const auto wait = [&] {
    return core::AASPolicy(core::ExtendedRoundRobin(6),
                           core::RankTable(spec_.num_classes()));
  };
  for (int batch : {4, 32, 7}) {
    {
      SCOPED_TRACE("eager batch=" + std::to_string(batch));
      expect_same_result(run_with(eager, 0), run_with(eager, batch));
    }
    {
      SCOPED_TRACE("deadline batch=" + std::to_string(batch));
      expect_same_result(run_with(deadline, 0), run_with(deadline, batch));
    }
    {
      SCOPED_TRACE("wait-compute batch=" + std::to_string(batch));
      expect_same_result(run_with(wait, 0), run_with(wait, batch));
    }
  }
}

TEST_F(SimulatorTest, SplitPhaseStepMatchesFusedForEveryExecutionModel) {
  // step() == step_begin + per-request predict_proba + step_finish, under
  // every attempt discipline — the substrate cross-session batched
  // serving stands on (serve::SessionShard classifies the gathered
  // requests in panels; the outcome must not depend on who runs the
  // forward pass).
  const auto cfg = scaled_config(6);
  const auto check = [&](auto make_policy) {
    auto split_policy = make_policy();
    auto models = tiny_models(spec_);
    data::StreamSlotSource source(stream_);
    SlotStepper stepper(spec_, &models, &trace_, &split_policy, &source, cfg);
    std::vector<SlotStepper::ClassifyRequest> requests;
    std::vector<net::Classification> results;
    while (!stepper.done()) {
      requests.clear();
      const std::size_t issued = stepper.step_begin(requests);
      EXPECT_EQ(issued, requests.size());
      results.clear();
      for (const auto& request : requests) {
        results.push_back(net::make_classification(
            models[static_cast<std::size_t>(request.sensor)].predict_proba(
                *request.window)));
      }
      stepper.step_finish(results.data(), results.size());
    }
    auto fused_policy = make_policy();
    Simulator fused(spec_, tiny_models(spec_), &trace_, &fused_policy, cfg);
    expect_same_result(stepper.take_result(), fused.run(stream_));
  };
  {
    SCOPED_TRACE("eager");
    check([&] { return core::PlainRRPolicy{core::ExtendedRoundRobin(6)}; });
  }
  {
    SCOPED_TRACE("deadline");
    check([&] { return core::NaiveAllPolicy(spec_.num_classes()); });
  }
  {
    SCOPED_TRACE("wait-compute");
    check([&] {
      return core::AASPolicy(core::ExtendedRoundRobin(6),
                             core::RankTable(spec_.num_classes()));
    });
  }
}

TEST_F(SimulatorTest, SplitPhaseMisuseRejected) {
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  auto models = tiny_models(spec_);
  data::StreamSlotSource source(stream_);
  SlotStepper stepper(spec_, &models, &trace_, &policy, &source,
                      scaled_config(6));
  // No open slot yet.
  EXPECT_THROW(stepper.step_finish(nullptr, 0), std::logic_error);
  std::vector<SlotStepper::ClassifyRequest> requests;
  stepper.step_begin(requests);
  // Re-opening and finishing with the wrong result count are both errors;
  // neither corrupts the open slot.
  EXPECT_THROW(stepper.step_begin(requests), std::logic_error);
  EXPECT_THROW(stepper.step_finish(nullptr, requests.size() + 1),
               std::invalid_argument);
  std::vector<net::Classification> results;
  for (const auto& request : requests) {
    results.push_back(net::make_classification(
        models[static_cast<std::size_t>(request.sensor)].predict_proba(
            *request.window)));
  }
  EXPECT_NO_THROW(stepper.step_finish(results.data(), results.size()));
}

}  // namespace
}  // namespace origin::sim
