// Bit-identity contract of the fast training path: GEMM-backed backward
// kernels, batched forward/backward through Sequential, the batched
// trainer, and the parallel train_system stage must all reproduce the
// per-sample reference loops exactly — not approximately — because the
// pipeline's model cache keys and the fleet determinism guarantees rest
// on trained weights being a pure function of the config seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/pipeline.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"
#include "nn/serialize.hpp"
#include "nn/softmax.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // ASSERT_EQ on float is exact comparison — bit identity, not epsilon.
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

void expect_same_grads(Layer& a, Layer& b) {
  const auto ga = a.grads();
  const auto gb = b.grads();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    SCOPED_TRACE("grad tensor " + std::to_string(i));
    expect_bit_identical(*ga[i], *gb[i]);
  }
}

Tensor random_input(const std::vector<int>& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(shape, rng, 1.0f);
}

// --- Conv1D backward kernels vs reference loops -----------------------

struct ConvCase {
  int cin, cout, kernel, stride, length;
};

const ConvCase kConvCases[] = {
    {1, 1, 1, 1, 1},    // degenerate: everything is 1
    {2, 3, 3, 1, 8},    // small odd
    {3, 7, 5, 2, 21},   // stride > 1, odd filter count (GEMM remainders)
    {2, 3, 9, 1, 9},    // kernel == length -> single output column
    {6, 20, 5, 1, 64},  // the deployed BL-1 first stage
    {5, 4, 2, 3, 17},   // stride > kernel
    {4, 13, 3, 2, 11},  // rows not a multiple of the 4-row tile
    {20, 32, 5, 1, 30},  // the deployed BL-1 second stage
};

TEST(TrainKernels, ConvBackwardMatchesReferenceAcrossShapes) {
  std::uint64_t seed = 5000;
  for (const auto& c : kConvCases) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    Conv1D fast(c.cin, c.cout, c.kernel, c.stride, rng_a);
    Conv1D ref(c.cin, c.cout, c.kernel, c.stride, rng_b);
    SCOPED_TRACE(fast.describe());

    const Tensor x = random_input({c.cin, c.length}, seed + 1);
    const Tensor y = fast.forward(x, /*train=*/true);
    expect_bit_identical(y, ref.forward(x, /*train=*/true));
    const Tensor gy = random_input(y.shape(), seed + 2);

    // Two consecutive backwards: the second exercises gradient
    // accumulation on top of non-zero grads (the contract is that each
    // accumulator starts from its current value).
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      const Tensor gx_fast = fast.backward(gy);
      const Tensor gx_ref = ref.backward_reference(gy);
      expect_bit_identical(gx_fast, gx_ref);
      expect_same_grads(fast, ref);
    }
    seed += 10;
  }
}

TEST(TrainKernels, ConvBackwardBatchMatchesSequentialSamples) {
  std::uint64_t seed = 6000;
  for (const auto& c : kConvCases) {
    const std::size_t counts[] = {1, 3, 7};
    for (const std::size_t count : counts) {
      util::Rng rng_a(seed);
      util::Rng rng_b(seed);
      Conv1D batched(c.cin, c.cout, c.kernel, c.stride, rng_a);
      Conv1D serial(c.cin, c.cout, c.kernel, c.stride, rng_b);
      SCOPED_TRACE(batched.describe() + " count=" + std::to_string(count));

      std::vector<Tensor> xs, gys;
      std::vector<const Tensor*> x_ptrs, gy_ptrs;
      for (std::size_t b = 0; b < count; ++b) {
        xs.push_back(random_input({c.cin, c.length}, seed + 10 + b));
      }
      std::vector<Tensor> ys(count), gxs(count);
      for (std::size_t b = 0; b < count; ++b) x_ptrs.push_back(&xs[b]);
      batched.forward_batch_train(x_ptrs.data(), count, ys.data());
      for (std::size_t b = 0; b < count; ++b) {
        gys.push_back(random_input(ys[b].shape(), seed + 20 + b));
      }
      for (std::size_t b = 0; b < count; ++b) gy_ptrs.push_back(&gys[b]);
      batched.backward_batch(gy_ptrs.data(), count, gxs.data());

      for (std::size_t b = 0; b < count; ++b) {
        const Tensor y = serial.forward(xs[b], /*train=*/true);
        expect_bit_identical(ys[b], y);
        expect_bit_identical(gxs[b], serial.backward_reference(gys[b]));
      }
      expect_same_grads(batched, serial);
      seed += 10;
    }
  }
}

// --- Dense backward kernels vs reference loops ------------------------

TEST(TrainKernels, DenseBackwardMatchesReferenceAcrossShapes) {
  const std::pair<int, int> cases[] = {
      {1, 1}, {4, 8}, {13, 7}, {64, 5}, {320, 64}, {9, 33}};
  std::uint64_t seed = 7000;
  for (const auto& [in, out] : cases) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    Dense fast(in, out, rng_a);
    Dense ref(in, out, rng_b);
    SCOPED_TRACE(fast.describe());

    const Tensor x = random_input({in}, seed + 1);
    expect_bit_identical(fast.forward(x, true), ref.forward(x, true));
    const Tensor gy = random_input({out}, seed + 2);
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      expect_bit_identical(fast.backward(gy), ref.backward_reference(gy));
      expect_same_grads(fast, ref);
    }
    seed += 10;
  }
}

TEST(TrainKernels, DenseBackwardBatchMatchesSequentialSamples) {
  const std::pair<int, int> cases[] = {{4, 8}, {13, 7}, {320, 64}};
  std::uint64_t seed = 8000;
  for (const auto& [in, out] : cases) {
    const std::size_t count = 6;
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    Dense batched(in, out, rng_a);
    Dense serial(in, out, rng_b);
    SCOPED_TRACE(batched.describe());

    std::vector<Tensor> xs, gys;
    std::vector<const Tensor*> x_ptrs, gy_ptrs;
    for (std::size_t b = 0; b < count; ++b) {
      xs.push_back(random_input({in}, seed + 10 + b));
      gys.push_back(random_input({out}, seed + 20 + b));
    }
    std::vector<Tensor> ys(count), gxs(count);
    for (std::size_t b = 0; b < count; ++b) {
      x_ptrs.push_back(&xs[b]);
      gy_ptrs.push_back(&gys[b]);
    }
    batched.forward_batch_train(x_ptrs.data(), count, ys.data());
    batched.backward_batch(gy_ptrs.data(), count, gxs.data());

    for (std::size_t b = 0; b < count; ++b) {
      expect_bit_identical(ys[b], serial.forward(xs[b], true));
      expect_bit_identical(gxs[b], serial.backward_reference(gys[b]));
    }
    expect_same_grads(batched, serial);
    seed += 10;
  }
}

TEST(TrainKernels, BackwardBatchWithoutForwardThrows) {
  util::Rng rng(1);
  Conv1D conv(2, 3, 3, 1, rng);
  Tensor gy({3, 6});
  const Tensor* ptr = &gy;
  Tensor gx;
  EXPECT_THROW(conv.backward_batch(&ptr, 1, &gx), std::logic_error);
  Dense dense(4, 2, rng);
  Tensor gy2({2});
  const Tensor* ptr2 = &gy2;
  EXPECT_THROW(dense.backward_batch(&ptr2, 1, &gx), std::logic_error);
}

// --- Full-model batched training vs per-sample reference --------------

/// The BL-1 shape in miniature: conv/pool stack, dropout, dense head.
Sequential tiny_cnn(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(3, 6, 5, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Flatten>()
      .emplace<Dense>(6 * MaxPool1D::out_length(Conv1D::out_length(20, 5, 1), 2, 2),
                      16, rng)
      .emplace<ReLU>()
      .emplace<Dropout>(0.25f)
      .emplace<Dense>(16, 4, rng);
  return m;
}

Samples random_samples(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  Samples out;
  for (int i = 0; i < n; ++i) {
    Tensor x = Tensor::randn({3, 20}, rng, 1.0f);
    out.push_back({std::move(x), static_cast<int>(rng.below(4))});
  }
  return out;
}

TEST(TrainKernels, FitKernelsMatchesReferenceWeights) {
  const Sequential base = tiny_cnn(99);
  ASSERT_TRUE(base.supports_batch_train());
  const Samples train = random_samples(37, 123);  // partial final batch

  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  cfg.learning_rate = 5e-3;
  cfg.shuffle_seed = 777;

  // Copying the model clones every layer; Dropout::clone resets its RNG,
  // so both copies consume identical dropout streams.
  Sequential ref_model = base;
  Sequential fast_model = base;
  TrainConfig ref_cfg = cfg;
  ref_cfg.use_kernels = false;
  const auto ref_hist = Trainer(ref_cfg).fit(ref_model, train);
  const auto fast_hist = Trainer(cfg).fit(fast_model, train);

  ASSERT_EQ(ref_hist.size(), fast_hist.size());
  for (std::size_t e = 0; e < ref_hist.size(); ++e) {
    EXPECT_EQ(ref_hist[e].loss, fast_hist[e].loss) << "epoch " << e;
    EXPECT_EQ(ref_hist[e].accuracy, fast_hist[e].accuracy) << "epoch " << e;
  }
  EXPECT_EQ(model_to_string(ref_model), model_to_string(fast_model));
}

TEST(TrainKernels, FitKernelsMatchesReferenceWithMixupAndEarlyStop) {
  const Sequential base = tiny_cnn(42);
  const Samples train = random_samples(30, 321);

  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 7;  // batch never divides the dataset evenly
  cfg.learning_rate = 5e-3;
  cfg.mixup_prob = 0.5;  // exercises the mixup RNG draw-order contract
  cfg.early_stop_accuracy = 0.4;
  cfg.shuffle_seed = 2024;

  Sequential ref_model = base;
  Sequential fast_model = base;
  TrainConfig ref_cfg = cfg;
  ref_cfg.use_kernels = false;
  const auto ref_hist = Trainer(ref_cfg).fit(ref_model, train);
  const auto fast_hist = Trainer(cfg).fit(fast_model, train);

  ASSERT_EQ(ref_hist.size(), fast_hist.size());  // same early-stop epoch
  for (std::size_t e = 0; e < ref_hist.size(); ++e) {
    EXPECT_EQ(ref_hist[e].loss, fast_hist[e].loss) << "epoch " << e;
    EXPECT_EQ(ref_hist[e].accuracy, fast_hist[e].accuracy) << "epoch " << e;
  }
  EXPECT_EQ(model_to_string(ref_model), model_to_string(fast_model));
}

TEST(TrainKernels, FitFallsBackForUnsupportedLayers) {
  util::Rng rng(7);
  Sequential with_softmax;
  with_softmax.emplace<Dense>(4, 8, rng)
      .emplace<ReLU>()
      .emplace<Softmax>();
  EXPECT_FALSE(with_softmax.supports_batch_train());

  Samples train;
  util::Rng data_rng(8);
  for (int i = 0; i < 12; ++i) {
    train.push_back(
        {Tensor::randn({4}, data_rng, 1.0f), static_cast<int>(data_rng.below(8))});
  }
  Sequential ref_model = with_softmax;
  Sequential fast_model = with_softmax;
  TrainConfig cfg;
  cfg.epochs = 2;
  TrainConfig ref_cfg = cfg;
  ref_cfg.use_kernels = false;
  Trainer(ref_cfg).fit(ref_model, train);
  Trainer(cfg).fit(fast_model, train);  // dispatches to the reference loop
  EXPECT_EQ(model_to_string(ref_model), model_to_string(fast_model));
}

}  // namespace
}  // namespace origin::nn

// --- Parallel train_system determinism --------------------------------

namespace origin::core {
namespace {

PipelineConfig micro_train(const std::string& cache_dir, int threads) {
  PipelineConfig cfg;
  cfg.train_per_class = 10;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.cache_dir = cache_dir;
  cfg.use_cache = true;
  cfg.seed = 555;
  cfg.train_threads = threads;
  return cfg;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TrainSystemParallel, ModelFilesByteIdenticalAcrossThreadCounts) {
  const auto base = std::filesystem::temp_directory_path();
  const auto dir_serial = (base / "origin_train_serial").string();
  const auto dir_parallel = (base / "origin_train_parallel").string();
  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);

  TrainedSystem serial, parallel;
  train_system(serial, micro_train(dir_serial, 1));
  train_system(parallel, micro_train(dir_parallel, 4));

  // Same cache key, same filenames — compare every model file bytewise.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_serial)) {
    const auto name = entry.path().filename();
    const auto other = std::filesystem::path(dir_parallel) / name;
    ASSERT_TRUE(std::filesystem::exists(other)) << name;
    EXPECT_EQ(slurp(entry.path()), slurp(other)) << name;
    ++files;
  }
  EXPECT_EQ(files, 3u * data::kNumSensors);  // bl1 + bl2 + rlx per sensor
  // No temp files may survive the atomic rename.
  for (const auto& dir : {dir_serial, dir_parallel}) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(entry.path().extension(), ".bin") << entry.path();
    }
  }
  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);
}

TEST(CacheDirDefault, RespectsEnvironmentOverride) {
  const char* saved = std::getenv("ORIGIN_CACHE_DIR");
  const std::string saved_value = saved ? saved : "";
  ::setenv("ORIGIN_CACHE_DIR", "/tmp/origin_cache_env_test", 1);
  EXPECT_EQ(default_cache_dir(), "/tmp/origin_cache_env_test");
  ::unsetenv("ORIGIN_CACHE_DIR");
  EXPECT_EQ(default_cache_dir(), "origin_models");
  if (saved) ::setenv("ORIGIN_CACHE_DIR", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace origin::core
