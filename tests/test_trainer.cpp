#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

/// Two Gaussian blobs in 4-D: linearly separable toy task.
Samples make_blobs(int per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Samples samples;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_class; ++i) {
      Tensor x({4});
      for (std::size_t d = 0; d < 4; ++d) {
        x[d] = static_cast<float>(rng.gauss(c == 0 ? -1.0 : 1.0, 0.5));
      }
      samples.push_back({std::move(x), c});
    }
  }
  rng.shuffle(samples);
  return samples;
}

Sequential blob_model(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Dense>(4, 8, rng).emplace<ReLU>().emplace<Dense>(8, 2, rng);
  return m;
}

TEST(Trainer, RejectsBadConfig) {
  TrainConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(Trainer{bad}, std::invalid_argument);
  bad.epochs = 1;
  bad.batch_size = 0;
  EXPECT_THROW(Trainer{bad}, std::invalid_argument);
}

TEST(Trainer, RejectsEmptyDataset) {
  auto m = blob_model(1);
  Trainer t;
  EXPECT_THROW(t.fit(m, {}), std::invalid_argument);
}

TEST(Trainer, LearnsSeparableTask) {
  auto m = blob_model(2);
  const Samples train = make_blobs(60, 3);
  TrainConfig cfg;
  cfg.epochs = 20;
  cfg.learning_rate = 5e-2;
  Trainer t(cfg);
  const auto history = t.fit(m, train);
  ASSERT_FALSE(history.empty());
  EXPECT_GT(history.back().accuracy, 0.95);
  EXPECT_LT(history.back().loss, history.front().loss);

  const Samples test = make_blobs(50, 4);
  EXPECT_GT(Trainer::evaluate(m, test).accuracy, 0.9);
}

TEST(Trainer, LossDecreasesMonotonicallyEnough) {
  auto m = blob_model(5);
  const Samples train = make_blobs(50, 6);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.learning_rate = 2e-2;
  const auto history = Trainer(cfg).fit(m, train);
  EXPECT_LT(history.back().loss, 0.8 * history.front().loss);
}

TEST(Trainer, EarlyStopTruncatesHistory) {
  auto m = blob_model(7);
  const Samples train = make_blobs(60, 8);
  TrainConfig cfg;
  cfg.epochs = 50;
  cfg.learning_rate = 5e-2;
  cfg.early_stop_accuracy = 0.9;
  const auto history = Trainer(cfg).fit(m, train);
  EXPECT_LT(history.size(), 50u);
  EXPECT_GE(history.back().accuracy, 0.9);
}

TEST(Trainer, DeterministicGivenSeed) {
  const Samples train = make_blobs(40, 9);
  auto m1 = blob_model(10);
  auto m2 = blob_model(10);
  TrainConfig cfg;
  cfg.epochs = 3;
  const auto h1 = Trainer(cfg).fit(m1, train);
  const auto h2 = Trainer(cfg).fit(m2, train);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_DOUBLE_EQ(h1[i].loss, h2[i].loss);
  }
}

TEST(Trainer, MixupPathLearns) {
  auto m = blob_model(11);
  const Samples train = make_blobs(60, 12);
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.learning_rate = 5e-2;
  cfg.mixup_prob = 0.5;
  Trainer(cfg).fit(m, train);
  const Samples test = make_blobs(50, 13);
  EXPECT_GT(Trainer::evaluate(m, test).accuracy, 0.85);
}

TEST(Trainer, EvaluateEmptyReturnsZero) {
  auto m = blob_model(14);
  const auto stats = Trainer::evaluate(m, {});
  EXPECT_DOUBLE_EQ(stats.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(stats.loss, 0.0);
}

TEST(Optimizer, SgdStepReducesLossOnQuadratic) {
  util::Rng rng(15);
  Sequential m;
  m.emplace<Dense>(2, 1, rng);
  SgdMomentum opt(0.1, 0.0);
  opt.bind(m);
  const Tensor x({2}, {1.0f, -1.0f});
  const Tensor target({1}, {3.0f});
  double prev = 1e18;
  for (int i = 0; i < 50; ++i) {
    const Tensor y = m.forward(x, true);
    const LossResult res = mse(y, target);
    m.backward(res.grad);
    opt.step();
    if (i > 0) {
      EXPECT_LE(res.loss, prev + 1e-6);
    }
    prev = res.loss;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  util::Rng rng(16);
  Sequential m;
  m.emplace<Dense>(2, 1, rng);
  Adam opt(0.05);
  opt.bind(m);
  const Tensor x({2}, {0.5f, 2.0f});
  const Tensor target({1}, {-1.0f});
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Tensor y = m.forward(x, true);
    const LossResult res = mse(y, target);
    m.backward(res.grad);
    opt.step();
    last = res.loss;
  }
  EXPECT_LT(last, 1e-3);
}

TEST(Optimizer, StepWithoutBindThrows) {
  SgdMomentum sgd(0.1);
  EXPECT_THROW(sgd.step(), std::logic_error);
  Adam adam(0.1);
  EXPECT_THROW(adam.step(), std::logic_error);
}

TEST(Optimizer, StepZeroesGradients) {
  util::Rng rng(17);
  Sequential m;
  m.emplace<Dense>(3, 2, rng);
  SgdMomentum opt(0.01);
  opt.bind(m);
  const Tensor y = m.forward(Tensor({3}, {1, 2, 3}), true);
  m.backward(Tensor({2}, {1.0f, -1.0f}));
  opt.step();
  for (Tensor* g : m.grads()) EXPECT_FLOAT_EQ(g->abs_sum(), 0.0f);
}

TEST(Loss, MseKnownValue) {
  const LossResult res = mse(Tensor({2}, {1.0f, 2.0f}), Tensor({2}, {0.0f, 4.0f}));
  EXPECT_NEAR(res.loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(res.grad[0], 1.0f, 1e-6);
  EXPECT_NEAR(res.grad[1], -2.0f, 1e-6);
}

TEST(Loss, CrossEntropyTargetValidation) {
  const Tensor logits({3});
  EXPECT_THROW(softmax_cross_entropy(logits, -1), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, 3), std::invalid_argument);
}

}  // namespace
}  // namespace origin::nn
