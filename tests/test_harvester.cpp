#include "energy/harvester.hpp"

#include <gtest/gtest.h>

namespace origin::energy {
namespace {

class HarvesterTest : public ::testing::Test {
 protected:
  PowerTrace trace{{1.0, 2.0, 3.0, 4.0}, 1.0};
};

TEST_F(HarvesterTest, Validation) {
  EXPECT_THROW(Harvester(nullptr, 0.5, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Harvester(&trace, 0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Harvester(&trace, 1.5, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Harvester(&trace, 0.5, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Harvester(&trace, 0.5, 1.0, -1.0), std::invalid_argument);
}

TEST_F(HarvesterTest, EfficiencyAndScaleApply) {
  Harvester h(&trace, 0.5, 2.0, 0.0);
  // 0.5 * 2.0 = 1.0x on the raw trace.
  EXPECT_DOUBLE_EQ(h.harvested_j(0.0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(h.power_w(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.average_power_w(), 2.5);
}

TEST_F(HarvesterTest, OffsetShiftsView) {
  Harvester a(&trace, 1.0, 1.0, 0.0);
  Harvester b(&trace, 1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(a.power_w(0.0), 1.0);
  EXPECT_DOUBLE_EQ(b.power_w(0.0), 2.0);
  EXPECT_DOUBLE_EQ(b.harvested_j(0.0, 1.0), 2.0);
}

TEST_F(HarvesterTest, OffsetsDecorrelateNodes) {
  Harvester a(&trace, 1.0, 1.0, 0.0);
  Harvester b(&trace, 1.0, 1.0, 2.0);
  // Same average, different instantaneous views.
  EXPECT_DOUBLE_EQ(a.average_power_w(), b.average_power_w());
  EXPECT_NE(a.power_w(0.0), b.power_w(0.0));
}

TEST_F(HarvesterTest, FullLoopIdenticalEnergy) {
  Harvester a(&trace, 1.0, 1.0, 0.0);
  Harvester b(&trace, 1.0, 1.0, 3.0);
  EXPECT_NEAR(a.harvested_j(0.0, 4.0), b.harvested_j(0.0, 4.0), 1e-12);
}

}  // namespace
}  // namespace origin::energy
