#include "data/stream_cursor.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace origin::data {
namespace {

bool same_bits(const nn::Tensor& a, const nn::Tensor& b) {
  return a.vec().size() == b.vec().size() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * a.vec().size()) == 0;
}

void expect_slot_equal(const SlotSample& got, const SlotSample& want,
                       std::size_t i) {
  EXPECT_EQ(got.label, want.label) << "slot " << i;
  EXPECT_EQ(got.activity, want.activity) << "slot " << i;
  EXPECT_EQ(got.t0_s, want.t0_s) << "slot " << i;
  EXPECT_EQ(got.ambiguous, want.ambiguous) << "slot " << i;
  for (int s = 0; s < kNumSensors; ++s) {
    EXPECT_TRUE(same_bits(got.windows[static_cast<std::size_t>(s)],
                          want.windows[static_cast<std::size_t>(s)]))
        << "slot " << i << " sensor " << s;
  }
}

class StreamCursorTest : public ::testing::Test {
 protected:
  StreamCursorTest() : spec_(dataset_spec(DatasetKind::MHealthLike)) {}

  UserProfile user(int index) const {
    util::Rng rng(40 + static_cast<std::uint64_t>(index));
    return random_user(index, rng);
  }

  DatasetSpec spec_;
};

TEST_F(StreamCursorTest, MatchesMaterializedStreamBitForBit) {
  const auto u = user(0);
  const Stream stream = make_stream(spec_, 60, u, 777);
  StreamCursor cursor(spec_, 60, u, 777, {}, /*ring_capacity=*/4);
  ASSERT_EQ(cursor.size(), stream.slots.size());
  EXPECT_EQ(cursor.segments().size(), stream.segments.size());
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    expect_slot_equal(cursor.slot(i), stream.slots[i], i);
  }
}

TEST_F(StreamCursorTest, MatchesStreamWithSnrNoise) {
  StreamConfig config;
  config.snr_db = 6.0;
  const auto u = user(1);
  const Stream stream = make_stream(spec_, 40, u, 901, config);
  StreamCursor cursor(spec_, 40, u, 901, config, /*ring_capacity=*/8);
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    expect_slot_equal(cursor.slot(i), stream.slots[i], i);
  }
}

TEST_F(StreamCursorTest, ResetReplaysIdenticalSlots) {
  StreamCursor cursor(spec_, 30, user(2), 55, {}, /*ring_capacity=*/2);
  std::vector<SlotSample> first;
  for (std::size_t i = 0; i < cursor.size(); ++i) first.push_back(cursor.slot(i));
  cursor.reset();
  EXPECT_EQ(cursor.generated(), 0u);
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    expect_slot_equal(cursor.slot(i), first[i], i);
  }
}

TEST_F(StreamCursorTest, RebindMatchesFreshCursor) {
  // A cursor recycled from another user's stream (the fleet runner's
  // pooled path) must produce the same bits as one built from scratch.
  StreamCursor pooled(spec_, 25, user(3), 1001, {}, /*ring_capacity=*/4);
  for (std::size_t i = 0; i < pooled.size(); ++i) pooled.slot(i);  // drain
  pooled.rebind(user(4), 2002);

  StreamCursor fresh(spec_, 25, user(4), 2002, {}, /*ring_capacity=*/4);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_slot_equal(pooled.slot(i), fresh.slot(i), i);
  }
}

TEST_F(StreamCursorTest, LookbackWindowIsHonored) {
  StreamCursor cursor(spec_, 20, user(5), 3, {}, /*ring_capacity=*/4);
  EXPECT_EQ(cursor.lookback(), 4u);
  cursor.slot(10);
  // Everything within the ring is still addressable...
  EXPECT_NO_THROW(cursor.slot(7));
  // ...older slots were recycled, and the end is still the end.
  EXPECT_THROW(cursor.slot(6), std::logic_error);
  EXPECT_THROW(cursor.slot(20), std::out_of_range);
}

TEST_F(StreamCursorTest, ValidatesConstruction) {
  EXPECT_THROW(StreamCursor(spec_, 0, user(0), 1), std::invalid_argument);
  // Two-phase form: unusable until a stream is bound.
  StreamCursor unbound(spec_, 10);
  EXPECT_THROW(unbound.slot(0), std::logic_error);
  EXPECT_THROW(unbound.reset(), std::logic_error);
  unbound.rebind(user(6), 9);
  EXPECT_NO_THROW(unbound.slot(0));
}

// --- simulator consumption -------------------------------------------------

std::array<nn::Sequential, 3> tiny_models(const DatasetSpec& spec) {
  std::array<nn::Sequential, 3> models;
  for (int s = 0; s < 3; ++s) {
    util::Rng rng(300 + static_cast<std::uint64_t>(s));
    auto& m = models[static_cast<std::size_t>(s)];
    m.emplace<nn::Conv1D>(spec.channels, 2, 8, 4, rng)
        .emplace<nn::ReLU>()
        .emplace<nn::Flatten>()
        .emplace<nn::Dense>(2 * 15, spec.num_classes(), rng);
  }
  return models;
}

class CursorSimulationTest : public ::testing::Test {
 protected:
  CursorSimulationTest()
      : spec_(dataset_spec(DatasetKind::MHealthLike)),
        trace_(energy::PowerTrace::generate_wifi_office({}, 11)) {}

  sim::SimulatorConfig scaled_config(int batch_slots) {
    sim::SimulatorConfig cfg;
    auto models = tiny_models(spec_);
    const auto cost = nn::estimate_cost(
        models[0], {spec_.channels, spec_.window_len}, cfg.node.compute);
    net::Message msg;
    const double total = cost.energy_j + cfg.node.radio.tx_energy_j(msg);
    const double scale = sim::calibrate_harvest_scale(
        total, trace_, cfg.harvester_efficiency, spec_.slot_seconds(), 6.0);
    for (auto& s : cfg.harvest_scale) s *= scale;
    cfg.batch_slots = batch_slots;
    return cfg;
  }

  void expect_same_results(const sim::SimResult& a, const sim::SimResult& b) {
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.accuracy.overall(), b.accuracy.overall());
    EXPECT_EQ(a.completion.attempts, b.completion.attempts);
    EXPECT_EQ(a.completion.completions, b.completion.completions);
    for (int s = 0; s < kNumSensors; ++s) {
      const auto si = static_cast<std::size_t>(s);
      EXPECT_EQ(a.scheduled[si], b.scheduled[si]);
      EXPECT_EQ(a.node_counters[si].completions, b.node_counters[si].completions);
      EXPECT_EQ(a.node_counters[si].consumed_j, b.node_counters[si].consumed_j);
    }
  }

  DatasetSpec spec_;
  energy::PowerTrace trace_;
};

TEST_F(CursorSimulationTest, CursorRunMatchesStreamRun) {
  const Stream stream = make_stream(spec_, 90, reference_user(), 12);
  for (int batch : {0, 16}) {
    core::PlainRRPolicy policy_a{core::ExtendedRoundRobin(6)};
    sim::Simulator sim_a(spec_, tiny_models(spec_), &trace_, &policy_a,
                         scaled_config(batch));
    const auto from_stream = sim_a.run(stream);

    StreamCursor cursor(spec_, 90, reference_user(), 12, {},
                        /*ring_capacity=*/16);
    core::PlainRRPolicy policy_b{core::ExtendedRoundRobin(6)};
    sim::Simulator sim_b(spec_, tiny_models(spec_), &trace_, &policy_b,
                         scaled_config(batch));
    const auto from_cursor = sim_b.run(cursor);
    expect_same_results(from_stream, from_cursor);
  }
}

TEST_F(CursorSimulationTest, BorrowedModelsMatchOwnedModels) {
  const Stream stream = make_stream(spec_, 60, reference_user(), 21);
  core::PlainRRPolicy policy_a{core::ExtendedRoundRobin(3)};
  sim::Simulator owned(spec_, tiny_models(spec_), &trace_, &policy_a,
                       scaled_config(0));
  const auto a = owned.run(stream);

  auto shared_models = tiny_models(spec_);
  core::PlainRRPolicy policy_b{core::ExtendedRoundRobin(3)};
  sim::Simulator borrowed(spec_, &shared_models, &trace_, &policy_b,
                          scaled_config(0));
  const auto b = borrowed.run(stream);
  // ...and a second run on the same borrowed instances stays identical
  // (no cross-run state accumulates in the networks).
  core::PlainRRPolicy policy_c{core::ExtendedRoundRobin(3)};
  sim::Simulator again(spec_, &shared_models, &trace_, &policy_c,
                       scaled_config(0));
  const auto c = again.run(stream);
  expect_same_results(a, b);
  expect_same_results(a, c);
}

TEST_F(CursorSimulationTest, BatchLargerThanLookbackIsRejected) {
  StreamCursor cursor(spec_, 40, reference_user(), 5, {}, /*ring_capacity=*/8);
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  sim::Simulator sim(spec_, tiny_models(spec_), &trace_, &policy,
                     scaled_config(/*batch_slots=*/16));
  EXPECT_THROW(sim.run(cursor), std::invalid_argument);
}

}  // namespace
}  // namespace origin::data
