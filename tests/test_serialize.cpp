#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <sys/resource.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

Sequential representative_model(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(3, 5, 4, 2, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2, 1)
      .emplace<Conv1D>(5, 4, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<Flatten>()
      .emplace<Dense>(4 * ((((20 - 4) / 2 + 1) - 2 + 1) - 3 + 1), 7, rng)
      .emplace<Dropout>(0.3f)
      .emplace<Dense>(7, 4, rng)
      .emplace<Softmax>();
  return m;
}

void expect_same_outputs(Sequential& a, Sequential& b,
                         const std::vector<int>& shape) {
  util::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const Tensor x = Tensor::randn(shape, rng, 1.0f);
    const Tensor ya = a.forward(x, false);
    const Tensor yb = b.forward(x, false);
    ASSERT_EQ(ya.shape(), yb.shape());
    for (std::size_t i = 0; i < ya.size(); ++i) {
      ASSERT_FLOAT_EQ(ya[i], yb[i]);
    }
  }
}

TEST(Serialize, StringRoundtripPreservesBehaviour) {
  Sequential m = representative_model(1);
  Sequential loaded = model_from_string(model_to_string(m));
  EXPECT_EQ(loaded.layer_count(), m.layer_count());
  EXPECT_EQ(loaded.param_count(), m.param_count());
  expect_same_outputs(m, loaded, {3, 20});
}

TEST(Serialize, FileRoundtrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "origin_model_test.bin").string();
  Sequential m = representative_model(2);
  save_model(m, path);
  Sequential loaded = load_model(path);
  expect_same_outputs(m, loaded, {3, 20});
  std::filesystem::remove(path);
}

TEST(Serialize, LayerKindsPreserved) {
  Sequential m = representative_model(3);
  Sequential loaded = model_from_string(model_to_string(m));
  for (std::size_t i = 0; i < m.layer_count(); ++i) {
    EXPECT_EQ(loaded.layer(i).kind(), m.layer(i).kind());
  }
}

TEST(Serialize, EmptyModelRoundtrips) {
  Sequential empty;
  Sequential loaded = model_from_string(model_to_string(empty));
  EXPECT_EQ(loaded.layer_count(), 0u);
}

TEST(Serialize, BadMagicThrows) {
  std::string blob = model_to_string(representative_model(4));
  blob[0] = 'X';
  EXPECT_THROW(model_from_string(blob), std::runtime_error);
}

TEST(Serialize, BadVersionThrows) {
  std::string blob = model_to_string(representative_model(5));
  blob[4] = 99;  // version byte
  EXPECT_THROW(model_from_string(blob), std::runtime_error);
}

TEST(Serialize, TruncationThrows) {
  const std::string blob = model_to_string(representative_model(6));
  for (std::size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 3}) {
    EXPECT_THROW(model_from_string(blob.substr(0, cut)), std::runtime_error);
  }
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model("/no/such/model.bin"), std::runtime_error);
}

TEST(Serialize, DropoutRateSurvives) {
  Sequential m;
  m.emplace<Dropout>(0.42f);
  Sequential loaded = model_from_string(model_to_string(m));
  auto* d = dynamic_cast<Dropout*>(&loaded.layer(0));
  ASSERT_NE(d, nullptr);
  EXPECT_FLOAT_EQ(d->rate(), 0.42f);
}

TEST(Serialize, FailedAtomicSaveLeavesNoTempFile) {
  // Regression: a write failure mid-stream (simulated with a file-size
  // rlimit) must surface as an exception AND clean up the `.tmp.<pid>`
  // staging file — a crashed save used to leave it behind.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "origin_atomic_save_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "model.bin").string();

  struct rlimit old_limit {};
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  // Exceeding the limit raises SIGXFSZ (default: kill); ignore it so the
  // write fails with EFBIG instead.
  struct sigaction old_action {};
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  ASSERT_EQ(sigaction(SIGXFSZ, &ignore, &old_action), 0);
  struct rlimit tiny = old_limit;
  tiny.rlim_cur = 64;  // far below any serialized model
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny), 0);

  Sequential m = representative_model(8);
  EXPECT_THROW(save_model_atomic(m, path), std::runtime_error);

  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ASSERT_EQ(sigaction(SIGXFSZ, &old_action, nullptr), 0);

  EXPECT_FALSE(fs::exists(path));
  for (const auto& entry : fs::directory_iterator(dir)) {
    ADD_FAILURE() << "stale file left behind: " << entry.path();
  }

  // With the limit lifted the same call succeeds and stages nothing.
  save_model_atomic(m, path);
  Sequential loaded = load_model(path);
  expect_same_outputs(m, loaded, {3, 20});
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  fs::remove_all(dir);
}

TEST(Serialize, ConvConfigSurvives) {
  util::Rng rng(7);
  Sequential m;
  m.emplace<Conv1D>(2, 6, 5, 3, rng);
  Sequential loaded = model_from_string(model_to_string(m));
  auto* c = dynamic_cast<Conv1D*>(&loaded.layer(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->in_channels(), 2);
  EXPECT_EQ(c->out_channels(), 6);
  EXPECT_EQ(c->kernel(), 5);
  EXPECT_EQ(c->stride(), 3);
}

}  // namespace
}  // namespace origin::nn
