#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

Sequential representative_model(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(3, 5, 4, 2, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2, 1)
      .emplace<Conv1D>(5, 4, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<Flatten>()
      .emplace<Dense>(4 * ((((20 - 4) / 2 + 1) - 2 + 1) - 3 + 1), 7, rng)
      .emplace<Dropout>(0.3f)
      .emplace<Dense>(7, 4, rng)
      .emplace<Softmax>();
  return m;
}

void expect_same_outputs(Sequential& a, Sequential& b,
                         const std::vector<int>& shape) {
  util::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const Tensor x = Tensor::randn(shape, rng, 1.0f);
    const Tensor ya = a.forward(x, false);
    const Tensor yb = b.forward(x, false);
    ASSERT_EQ(ya.shape(), yb.shape());
    for (std::size_t i = 0; i < ya.size(); ++i) {
      ASSERT_FLOAT_EQ(ya[i], yb[i]);
    }
  }
}

TEST(Serialize, StringRoundtripPreservesBehaviour) {
  Sequential m = representative_model(1);
  Sequential loaded = model_from_string(model_to_string(m));
  EXPECT_EQ(loaded.layer_count(), m.layer_count());
  EXPECT_EQ(loaded.param_count(), m.param_count());
  expect_same_outputs(m, loaded, {3, 20});
}

TEST(Serialize, FileRoundtrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "origin_model_test.bin").string();
  Sequential m = representative_model(2);
  save_model(m, path);
  Sequential loaded = load_model(path);
  expect_same_outputs(m, loaded, {3, 20});
  std::filesystem::remove(path);
}

TEST(Serialize, LayerKindsPreserved) {
  Sequential m = representative_model(3);
  Sequential loaded = model_from_string(model_to_string(m));
  for (std::size_t i = 0; i < m.layer_count(); ++i) {
    EXPECT_EQ(loaded.layer(i).kind(), m.layer(i).kind());
  }
}

TEST(Serialize, EmptyModelRoundtrips) {
  Sequential empty;
  Sequential loaded = model_from_string(model_to_string(empty));
  EXPECT_EQ(loaded.layer_count(), 0u);
}

TEST(Serialize, BadMagicThrows) {
  std::string blob = model_to_string(representative_model(4));
  blob[0] = 'X';
  EXPECT_THROW(model_from_string(blob), std::runtime_error);
}

TEST(Serialize, BadVersionThrows) {
  std::string blob = model_to_string(representative_model(5));
  blob[4] = 99;  // version byte
  EXPECT_THROW(model_from_string(blob), std::runtime_error);
}

TEST(Serialize, TruncationThrows) {
  const std::string blob = model_to_string(representative_model(6));
  for (std::size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 3}) {
    EXPECT_THROW(model_from_string(blob.substr(0, cut)), std::runtime_error);
  }
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model("/no/such/model.bin"), std::runtime_error);
}

TEST(Serialize, DropoutRateSurvives) {
  Sequential m;
  m.emplace<Dropout>(0.42f);
  Sequential loaded = model_from_string(model_to_string(m));
  auto* d = dynamic_cast<Dropout*>(&loaded.layer(0));
  ASSERT_NE(d, nullptr);
  EXPECT_FLOAT_EQ(d->rate(), 0.42f);
}

TEST(Serialize, ConvConfigSurvives) {
  util::Rng rng(7);
  Sequential m;
  m.emplace<Conv1D>(2, 6, 5, 3, rng);
  Sequential loaded = model_from_string(model_to_string(m));
  auto* c = dynamic_cast<Conv1D*>(&loaded.layer(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->in_channels(), 2);
  EXPECT_EQ(c->out_channels(), 6);
  EXPECT_EQ(c->kernel(), 5);
  EXPECT_EQ(c->stride(), 3);
}

}  // namespace
}  // namespace origin::nn
