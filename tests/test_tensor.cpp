#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace origin::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeSize) {
  EXPECT_EQ(Tensor::shape_size({}), 0u);
  EXPECT_EQ(Tensor::shape_size({5}), 5u);
  EXPECT_EQ(Tensor::shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(Tensor::shape_size({2, 0}), 0u);
  EXPECT_THROW(Tensor::shape_size({-1}), std::invalid_argument);
}

TEST(Tensor, ConstructWithDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({3}, 2.5f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, RandnStddev) {
  util::Rng rng(1);
  const Tensor t = Tensor::randn({10000}, rng, 0.5f);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sq += t[i] * t[i];
  EXPECT_NEAR(sq / static_cast<double>(t.size()), 0.25, 0.02);
}

TEST(Tensor, RowMajor2DAccess) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, RowMajor3DAccess) {
  Tensor t({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 1, 1), 3.0f);
  EXPECT_EQ(t.at(1, 0, 1), 5.0f);
  EXPECT_EQ(t.at(1, 1, 1), 7.0f);
}

TEST(Tensor, AtWrongRankThrows) {
  Tensor t({4});
  EXPECT_THROW(t.at(0, 0), std::logic_error);
  EXPECT_THROW(t.at(0, 0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({6});
  EXPECT_EQ(r.rank(), 1);
  EXPECT_EQ(r[4], 4.0f);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add(b);
  EXPECT_EQ(a[2], 33.0f);
  a.sub(b);
  EXPECT_EQ(a[2], 3.0f);
  a.scale(2.0f);
  EXPECT_EQ(a[0], 2.0f);
  a.axpy(0.5f, b);
  EXPECT_EQ(a[1], 4.0f + 10.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add(b), std::invalid_argument);
  EXPECT_THROW(a.sub(b), std::invalid_argument);
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-1, 2, -3, 4});
  EXPECT_EQ(t.sum(), 2.0f);
  EXPECT_EQ(t.abs_sum(), 10.0f);
  EXPECT_EQ(t.sq_sum(), 30.0f);
  EXPECT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.argmax(), 3u);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3}).shape_str(), "[2x3]");
  EXPECT_EQ(Tensor({7}).shape_str(), "[7]");
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).same_shape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).same_shape(Tensor({3, 2})));
  EXPECT_FALSE(Tensor({6}).same_shape(Tensor({2, 3})));
}

}  // namespace
}  // namespace origin::nn
