#include "net/sensor_node.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "util/rng.hpp"

namespace origin::net {
namespace {

nn::Sequential tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Flatten>().emplace<nn::Dense>(8, 3, rng);
  return m;
}

class SensorNodeTest : public ::testing::Test {
 protected:
  SensorNodeTest()
      : trace_({1e-6, 1e-6, 1e-6, 1e-6}, 1.0),
        harvester_(&trace_, 1.0, 1.0, 0.0) {}

  SensorNode make_node(SensorNodeConfig cfg = {}) {
    return SensorNode(data::SensorLocation::Chest, tiny_model(1), {2, 4},
                      harvester_, cfg);
  }

  energy::PowerTrace trace_;
  energy::Harvester harvester_;
  nn::Tensor window_{std::vector<int>{2, 4},
                     std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}};
};

TEST_F(SensorNodeTest, CostIncludesRadio) {
  auto node = make_node();
  nn::ComputeProfile profile;
  const auto compute = nn::estimate_cost(node.model(), {2, 4}, profile);
  EXPECT_GT(node.inference_energy_j(), compute.energy_j);
}

TEST_F(SensorNodeTest, CapacitorScalesWithHeadroom) {
  SensorNodeConfig cfg;
  cfg.capacitor_headroom = 3.0;
  auto node = make_node(cfg);
  EXPECT_NEAR(node.capacity_j(), 3.0 * node.inference_energy_j(), 1e-15);
  cfg.capacitor_headroom = 0.5;
  EXPECT_THROW(make_node(cfg), std::invalid_argument);
}

TEST_F(SensorNodeTest, AccumulateHarvestsFromTrace) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.0;
  cfg.leakage_w = 0.0;  // isolate the harvest path
  auto node = make_node(cfg);
  const double before = node.stored_j();
  node.accumulate(0.0, 2.0);
  EXPECT_NEAR(node.stored_j() - before, 2e-6, 1e-12);
  EXPECT_NEAR(node.counters().harvested_j, 2e-6, 1e-12);
  EXPECT_THROW(node.accumulate(2.0, 1.0), std::invalid_argument);
}

TEST_F(SensorNodeTest, WaitComputeSucceedsWhenCharged) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 1.0;  // full
  auto node = make_node(cfg);
  ASSERT_TRUE(node.can_infer());
  const auto result = node.attempt_wait_compute(window_);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->valid());
  EXPECT_EQ(node.counters().completions, 1u);
  EXPECT_EQ(node.counters().attempts, 1u);
}

TEST_F(SensorNodeTest, WaitComputeSkipsWhenEmptyWithoutSpending) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.05;
  auto node = make_node(cfg);
  const double before = node.stored_j();
  const auto result = node.attempt_wait_compute(window_);
  EXPECT_FALSE(result.has_value());
  EXPECT_DOUBLE_EQ(node.stored_j(), before);  // wait-compute never wastes
  EXPECT_EQ(node.counters().skipped_no_energy, 1u);
}

TEST_F(SensorNodeTest, EagerAccumulatesProgressAcrossAttempts) {
  SensorNodeConfig cfg;
  cfg.capacitor_headroom = 2.0;
  cfg.initial_charge = 0.25;  // half an inference worth
  cfg.nvp.enabled = true;
  auto node = make_node(cfg);
  // First eager attempt: spends the charge, checkpoints, no result.
  auto r1 = node.attempt_eager(window_);
  EXPECT_FALSE(r1.has_value());
  EXPECT_EQ(node.counters().died_midway, 1u);
  // Recharge enough to finish (progress persisted).
  while (node.stored_j() < 0.8 * node.inference_energy_j()) {
    node.accumulate(0.0, 4.0);
  }
  auto r2 = node.attempt_eager(window_);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(node.counters().completions, 1u);
  EXPECT_GT(node.nvp().checkpoints(), 0u);
}

TEST_F(SensorNodeTest, EagerBelowStartThresholdSkips) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.0;
  auto node = make_node(cfg);
  const auto result = node.attempt_eager(window_, 0.1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(node.counters().skipped_no_energy, 1u);
}

TEST_F(SensorNodeTest, VolatileEagerLosesProgress) {
  SensorNodeConfig cfg;
  cfg.capacitor_headroom = 2.0;
  cfg.initial_charge = 0.25;
  cfg.nvp.enabled = false;
  auto node = make_node(cfg);
  node.attempt_eager(window_);
  EXPECT_FALSE(node.nvp().task_active());  // work discarded
}

TEST_F(SensorNodeTest, DeadlineCompletesOnlyWithFullCharge) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 1.0;
  auto node = make_node(cfg);
  EXPECT_TRUE(node.attempt_deadline(window_).has_value());

  SensorNodeConfig half;
  half.capacitor_headroom = 2.0;
  half.initial_charge = 0.25;
  auto starved = make_node(half);
  const double before = starved.stored_j();
  EXPECT_GT(before, 0.0);
  EXPECT_FALSE(starved.attempt_deadline(window_).has_value());
  // Partial work burns the stored charge (deadline semantics).
  EXPECT_DOUBLE_EQ(starved.stored_j(), 0.0);
  EXPECT_EQ(starved.counters().died_midway, 1u);
}

TEST_F(SensorNodeTest, DeadlineCannotStartWhenNearlyEmpty) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.001;
  auto node = make_node(cfg);
  const double before = node.stored_j();
  EXPECT_FALSE(node.attempt_deadline(window_).has_value());
  EXPECT_DOUBLE_EQ(node.stored_j(), before);  // never booted
  EXPECT_EQ(node.counters().skipped_no_energy, 1u);
}

TEST_F(SensorNodeTest, ClassifyIgnoresEnergy) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.0;
  auto node = make_node(cfg);
  const auto c = node.classify(window_);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(node.counters().attempts, 0u);  // bench supply, not counted
}

TEST_F(SensorNodeTest, ConsumedTracksDraws) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 1.0;
  auto node = make_node(cfg);
  node.attempt_wait_compute(window_);
  EXPECT_NEAR(node.counters().consumed_j, node.inference_energy_j(), 1e-15);
}

TEST_F(SensorNodeTest, ProbeAndResolveMatchFusedAttempt) {
  // probe_* + resolve is attempt_* with the classification deferred — the
  // seam cross-session batched serving runs the forward pass through.
  // Same counters, same joules, same classification.
  SensorNodeConfig cfg;
  cfg.initial_charge = 1.0;
  auto fused = make_node(cfg);
  auto split = make_node(cfg);
  const auto direct = fused.attempt_wait_compute(window_);
  const auto probe = split.probe_wait_compute(window_);
  ASSERT_TRUE(probe.completed);
  ASSERT_EQ(probe.classify, &window_);
  EXPECT_FALSE(probe.ready.has_value());
  const auto resolved = split.resolve(probe);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->predicted_class, direct->predicted_class);
  EXPECT_EQ(resolved->probs, direct->probs);
  EXPECT_EQ(split.counters().attempts, fused.counters().attempts);
  EXPECT_EQ(split.counters().completions, fused.counters().completions);
  EXPECT_DOUBLE_EQ(split.stored_j(), fused.stored_j());
}

TEST_F(SensorNodeTest, IncompleteProbeResolvesToNothing) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 0.05;
  auto node = make_node(cfg);
  const auto probe = node.probe_wait_compute(window_);
  EXPECT_FALSE(probe.completed);
  EXPECT_EQ(probe.classify, nullptr);
  EXPECT_FALSE(node.resolve(probe).has_value());
  EXPECT_EQ(node.counters().skipped_no_energy, 1u);
}

TEST_F(SensorNodeTest, PrecomputedProbeCarriesResultWithoutClassify) {
  SensorNodeConfig cfg;
  cfg.initial_charge = 1.0;
  auto node = make_node(cfg);
  const Classification canned = node.classify(window_);
  const auto probe = node.probe_deadline(window_, 0.1, &canned);
  ASSERT_TRUE(probe.completed);
  EXPECT_EQ(probe.classify, nullptr);  // nothing left to compute
  ASSERT_TRUE(probe.ready.has_value());
  const auto resolved = node.resolve(probe);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->probs, canned.probs);
}

TEST_F(SensorNodeTest, EagerProbeCompletionPinsTheOriginalWindow) {
  // A resumed eager task classifies the window it was begun on; the probe
  // must keep that window alive past the begin-slot state reset.
  SensorNodeConfig cfg;
  cfg.capacitor_headroom = 2.0;
  cfg.initial_charge = 0.25;
  cfg.nvp.enabled = true;
  auto fused = make_node(cfg);
  auto split = make_node(cfg);
  EXPECT_FALSE(fused.attempt_eager(window_).has_value());
  EXPECT_FALSE(split.probe_eager(window_).completed);
  while (fused.stored_j() < 0.8 * fused.inference_energy_j()) {
    fused.accumulate(0.0, 4.0);
    split.accumulate(0.0, 4.0);
  }
  ASSERT_DOUBLE_EQ(split.stored_j(), fused.stored_j());
  const nn::Tensor stale_slot{std::vector<int>{2, 4},
                              std::vector<float>{8, 7, 6, 5, 4, 3, 2, 1}};
  const auto direct = fused.attempt_eager(stale_slot);
  const auto probe = split.probe_eager(stale_slot);
  ASSERT_TRUE(probe.completed);
  ASSERT_NE(probe.classify, nullptr);
  EXPECT_EQ(probe.classify->vec(), window_.vec());  // original, not current
  const auto resolved = split.resolve(probe);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->probs, direct->probs);
  EXPECT_EQ(split.counters().completions, fused.counters().completions);
}

}  // namespace
}  // namespace origin::net
