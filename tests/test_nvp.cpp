#include "energy/nvp.hpp"

#include <gtest/gtest.h>

namespace origin::energy {
namespace {

NvpConfig volatile_core() {
  NvpConfig cfg;
  cfg.enabled = false;
  return cfg;
}

TEST(Nvp, Validation) {
  NvpConfig bad;
  bad.checkpoint_j = -1.0;
  EXPECT_THROW(NvpCore{bad}, std::invalid_argument);
  NvpCore core;
  EXPECT_THROW(core.begin_task(0.0), std::invalid_argument);
  EXPECT_THROW(core.advance(-1.0), std::invalid_argument);
}

TEST(Nvp, CompletesWithSufficientAllowance) {
  NvpCore core;
  core.begin_task(5.0);
  const auto adv = core.advance(10.0);
  EXPECT_TRUE(adv.completed);
  EXPECT_DOUBLE_EQ(adv.consumed_j, 5.0);
  EXPECT_FALSE(core.task_active());
}

TEST(Nvp, AdvanceWithoutTaskIsNoop) {
  NvpCore core;
  const auto adv = core.advance(10.0);
  EXPECT_FALSE(adv.completed);
  EXPECT_DOUBLE_EQ(adv.consumed_j, 0.0);
}

TEST(Nvp, CheckpointPreservesProgress) {
  NvpConfig cfg;
  cfg.checkpoint_j = 0.5;
  cfg.restore_j = 0.5;
  NvpCore core(cfg);
  core.begin_task(10.0);
  // First advance: 4 J allowance -> 3.5 J of work + 0.5 J checkpoint.
  auto adv = core.advance(4.0);
  EXPECT_FALSE(adv.completed);
  EXPECT_DOUBLE_EQ(adv.consumed_j, 4.0);
  EXPECT_TRUE(core.suspended());
  EXPECT_NEAR(core.remaining_j(), 6.5, 1e-12);
  EXPECT_EQ(core.checkpoints(), 1u);
  // Resume: pay restore then finish.
  adv = core.advance(100.0);
  EXPECT_TRUE(adv.completed);
  EXPECT_DOUBLE_EQ(adv.consumed_j, 0.5 + 6.5);
  EXPECT_EQ(core.restores(), 1u);
}

TEST(Nvp, VolatileCoreLosesProgress) {
  NvpCore core(volatile_core());
  core.begin_task(10.0);
  auto adv = core.advance(4.0);
  EXPECT_FALSE(adv.completed);
  EXPECT_DOUBLE_EQ(adv.consumed_j, 4.0);  // energy burned...
  EXPECT_DOUBLE_EQ(core.progress(), 0.0);  // ...work lost
  // Needs the full 10 J in one go.
  adv = core.advance(9.0);
  EXPECT_FALSE(adv.completed);
  adv = core.advance(10.0);
  EXPECT_TRUE(adv.completed);
}

TEST(Nvp, RestoreTooExpensiveDoesNothing) {
  NvpConfig cfg;
  cfg.restore_j = 1.0;
  NvpCore core(cfg);
  core.begin_task(10.0);
  core.advance(2.0);  // suspend with progress
  const double progress = core.progress();
  const auto adv = core.advance(0.5);  // cannot even restore
  EXPECT_DOUBLE_EQ(adv.consumed_j, 0.0);
  EXPECT_DOUBLE_EQ(core.progress(), progress);
}

TEST(Nvp, ForwardProgressAcrossManySmallAdvances) {
  // The NVP guarantee: arbitrarily fragmented energy still finishes the
  // task (unlike the volatile core).
  NvpConfig cfg;
  cfg.checkpoint_j = 0.05;
  cfg.restore_j = 0.05;
  NvpCore core(cfg);
  core.begin_task(5.0);
  int rounds = 0;
  while (core.task_active() && rounds < 100) {
    core.advance(0.5);
    ++rounds;
  }
  EXPECT_FALSE(core.task_active());
  EXPECT_LT(rounds, 100);
  EXPECT_GT(core.checkpoints(), 0u);
}

TEST(Nvp, AbortClearsTask) {
  NvpCore core;
  core.begin_task(5.0);
  core.advance(1.0);
  core.abort_task();
  EXPECT_FALSE(core.task_active());
  EXPECT_DOUBLE_EQ(core.remaining_j(), 0.0);
}

TEST(Nvp, BeginTaskReplacesOldTask) {
  NvpCore core;
  core.begin_task(5.0);
  core.advance(1.0);
  core.begin_task(2.0);
  EXPECT_DOUBLE_EQ(core.remaining_j(), 2.0);
  EXPECT_DOUBLE_EQ(core.progress(), 0.0);
}

TEST(Nvp, ProgressFraction) {
  NvpConfig cfg;
  cfg.checkpoint_j = 0.0;
  NvpCore core(cfg);
  core.begin_task(10.0);
  core.advance(4.0);
  EXPECT_NEAR(core.progress(), 0.4, 1e-12);
}

}  // namespace
}  // namespace origin::energy
