#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace origin::sim {
namespace {

TEST(AccuracyTracker, Validation) {
  EXPECT_THROW(AccuracyTracker(0), std::invalid_argument);
  AccuracyTracker t(3);
  EXPECT_THROW(t.record(-1, 0), std::out_of_range);
  EXPECT_THROW(t.record(3, 0), std::out_of_range);
  EXPECT_THROW(t.record(0, 3), std::out_of_range);
}

TEST(AccuracyTracker, OverallAndPerClass) {
  AccuracyTracker t(2);
  t.record(0, 0);
  t.record(0, 1);
  t.record(1, 1);
  t.record(1, 1);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_EQ(t.correct(), 3u);
  EXPECT_DOUBLE_EQ(t.overall(), 0.75);
  EXPECT_DOUBLE_EQ(t.per_class(0), 0.5);
  EXPECT_DOUBLE_EQ(t.per_class(1), 1.0);
  EXPECT_EQ(t.class_total(0), 2u);
}

TEST(AccuracyTracker, NoOutputCountsAsWrong) {
  AccuracyTracker t(2);
  t.record(1, -1);
  EXPECT_DOUBLE_EQ(t.overall(), 0.0);
  // The "no output" column is the last one.
  EXPECT_EQ(t.confusion()[1][2], 1u);
}

TEST(AccuracyTracker, ConfusionMatrixPlacement) {
  AccuracyTracker t(3);
  t.record(0, 2);
  t.record(2, 2);
  EXPECT_EQ(t.confusion()[0][2], 1u);
  EXPECT_EQ(t.confusion()[2][2], 1u);
  EXPECT_EQ(t.confusion()[1][0], 0u);
}

TEST(AccuracyTracker, EmptyClassAccuracyZero) {
  AccuracyTracker t(2);
  t.record(0, 0);
  EXPECT_DOUBLE_EQ(t.per_class(1), 0.0);
  EXPECT_THROW(t.per_class(5), std::out_of_range);
}

TEST(CompletionStats, Percentages) {
  CompletionStats s;
  s.slots = 100;
  s.slots_all_completed = 10;
  s.slots_some_completed = 25;
  s.slots_none_completed = 75;
  s.attempts = 300;
  s.completions = 60;
  EXPECT_DOUBLE_EQ(s.pct_all(), 10.0);
  EXPECT_DOUBLE_EQ(s.pct_at_least_one(), 25.0);
  EXPECT_DOUBLE_EQ(s.pct_failed_slots(), 75.0);
  EXPECT_DOUBLE_EQ(s.attempt_success_rate(), 20.0);
}

TEST(CompletionStats, EmptyIsZeroNotNan) {
  CompletionStats s;
  EXPECT_DOUBLE_EQ(s.pct_all(), 0.0);
  EXPECT_DOUBLE_EQ(s.attempt_success_rate(), 0.0);
}

// Regression: a SimResult whose per-slot outputs went out of sync with the
// slot count (silent truncation) must fail validation loudly.
TEST(SimResultValidate, DetectsTruncatedOutputs) {
  SimResult r;
  r.accuracy = AccuracyTracker(3);
  r.outputs = {0, 1};
  r.completion.slots = 2;
  r.accuracy.record(0, 0);
  r.accuracy.record(1, 1);
  EXPECT_NO_THROW(r.validate(2));
  EXPECT_THROW(r.validate(3), std::logic_error);

  SimResult truncated = r;
  truncated.outputs.pop_back();
  EXPECT_THROW(truncated.validate(2), std::logic_error);
}

TEST(SimResultValidate, DetectsSlotCountMismatch) {
  SimResult r;
  r.accuracy = AccuracyTracker(3);
  r.outputs = {0};
  r.completion.slots = 2;  // bookkeeping drifted from reality
  r.accuracy.record(0, 0);
  EXPECT_THROW(r.validate(1), std::logic_error);
}

}  // namespace
}  // namespace origin::sim
