// The kernel-backend dispatch contract (DESIGN.md §13):
//
//   1. Registry: the reference backend always exists and is the default;
//      "auto" resolves to the best available backend; unknown names are
//      rejected without changing the active backend.
//   2. Within-backend bit-identity: each backend's outputs are exact —
//      golden FNV-1a checksums over conv/dense/backward/synthesis outputs
//      ("reference" has its own goldens; avx2 and neon share the "fused"
//      goldens because both use single-rounded FMA in the same k order),
//      and batch == single bit-for-bit under every backend.
//   3. Cross-backend equivalence: backends agree within a small tolerance
//      (fused vs unfused rounding), never bit-for-bit.
//   4. Int8 serving path: integer accumulation is exact, so int8 outputs
//      are bit-identical across ALL backends, and classification accuracy
//      on a trained fixture's held-out set matches the float path.
//   5. Serve tier: ServeLoop results are bit-identical across thread
//      counts under every backend (and under bits=8), and a snapshot
//      refuses to restore under a different backend or word width.
//
// Registered as one ctest entry with LABELS backends (the trained fixture
// is shared across cases; per-case discovery would retrain it).
#include "nn/kernels/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/signal_model.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/energy_model.hpp"
#include "nn/kernels.hpp"
#include "nn/quantize.hpp"
#include "serve/serve_loop.hpp"
#include "serve/snapshot.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace origin {
namespace {

namespace k = nn::kernels;

/// Switches the process-global backend for one test and restores the
/// previous one on scope exit, so test order never matters.
class BackendScope {
 public:
  explicit BackendScope(const char* name)
      : prev_(k::active_backend().name) {
    EXPECT_TRUE(k::set_backend(name)) << "backend unavailable: " << name;
  }
  ~BackendScope() { k::set_backend(prev_); }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  std::string prev_;
};

std::uint64_t fnv1a_f32(const float* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof bits);
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xFFu;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t fnv1a_tensor(const nn::Tensor& t) {
  return fnv1a_f32(t.data(), t.size());
}

// --- Deterministic kernel workloads (fixed seeds; shapes exercise the
// SIMD main loops AND the scalar remainders: 8 rows x 60 columns hits the
// 4-row x 8-column AVX2 tiles plus a 4-column tail).

nn::Tensor conv_output() {
  util::Rng rng(101);
  nn::Conv1D conv(6, 8, 5, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({6, 64}, rng, 1.0f);
  return conv.forward(x, /*train=*/false);
}

nn::Tensor dense_output() {
  util::Rng rng(202);
  nn::Dense dense(50, 11, rng);
  const nn::Tensor x = nn::Tensor::randn({50}, rng, 1.0f);
  return dense.forward(x, /*train=*/false);
}

/// grad_weight ++ grad_bias ++ grad_input of one conv training step.
std::vector<float> conv_backward_output() {
  util::Rng rng(303);
  nn::Conv1D conv(4, 8, 3, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({4, 40}, rng, 1.0f);
  const nn::Tensor y = conv.forward(x, /*train=*/true);
  const nn::Tensor g = nn::Tensor::randn(y.shape(), rng, 1.0f);
  const nn::Tensor gx = conv.backward(g);
  std::vector<float> all;
  for (nn::Tensor* t : conv.grads()) {
    all.insert(all.end(), t->data(), t->data() + t->size());
  }
  all.insert(all.end(), gx.data(), gx.data() + gx.size());
  return all;
}

nn::Tensor synth_output() {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  const data::SignalModel model(spec, data::reference_user());
  util::Rng rng(404);
  return model.window(data::Activity::Running, data::SensorLocation::LeftAnkle,
                      0.0, rng);
}

/// Golden checksums per backend family. The reference backend never fuses
/// (compiled -ffp-contract=off), so it has its own set; avx2 and neon
/// both compute every element as single-rounded fused FMAs in the same
/// k order, so they share the "fused" set — on any machine, any of the
/// three either matches its family's goldens exactly or the backend is
/// broken.
struct Goldens {
  std::uint64_t conv, dense, backward, synth;
};

const Goldens& goldens_for(const std::string& backend) {
  // The synth checksum is the same in both families: synthesis
  // accumulates in double and stores float, so the fused-vs-unfused
  // double rounding difference (~1e-16 relative) is absorbed by the
  // float store on every sample of this window.
  static const Goldens kReference{0x06b13ed78bfbc62bULL, 0xaa55c3fbd126264dULL,
                                  0x4d7f987c48082df0ULL, 0xdd72238a28a9367cULL};
  static const Goldens kFused{0xdd73ac3c610f08fdULL, 0x95038c22737234a9ULL,
                              0xf3b97205bfe5bd3dULL, 0xdd72238a28a9367cULL};
  return backend == "reference" ? kReference : kFused;
}

// ---------------------------------------------------------------------------
// 1. Registry

TEST(BackendRegistry, ReferenceAlwaysAvailableAndDefault) {
  const auto& all = k::available_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all.front()->name, "reference");
  ASSERT_NE(k::find_backend("reference"), nullptr);
  // Every registered kernel pointer is non-null on every backend.
  for (const k::Backend* b : all) {
    EXPECT_NE(b->im2row, nullptr) << b->name;
    EXPECT_NE(b->gemm_bias, nullptr) << b->name;
    EXPECT_NE(b->matvec_bias, nullptr) << b->name;
    EXPECT_NE(b->gemm_acc_nt, nullptr) << b->name;
    EXPECT_NE(b->gemm_tn, nullptr) << b->name;
    EXPECT_NE(b->row_sum_acc, nullptr) << b->name;
    EXPECT_NE(b->conv1d_grad_input, nullptr) << b->name;
    EXPECT_NE(b->gemm_bias_i8, nullptr) << b->name;
    EXPECT_NE(b->synth_channel, nullptr) << b->name;
  }
}

TEST(BackendRegistry, AutoResolvesToBestAvailable) {
  const auto& all = k::available_backends();
  EXPECT_EQ(k::find_backend("auto"), all.back());
  BackendScope scope("auto");
  EXPECT_STREQ(k::active_backend().name, all.back()->name);
}

TEST(BackendRegistry, UnknownNameRejectedWithoutSwitching) {
  const std::string before = k::active_backend().name;
  EXPECT_EQ(k::find_backend("bogus"), nullptr);
  EXPECT_FALSE(k::set_backend("bogus"));
  EXPECT_EQ(std::string(k::active_backend().name), before);
}

TEST(BackendRegistry, SimdFeaturesNonEmpty) {
  EXPECT_FALSE(k::simd_features().empty());
}

// ---------------------------------------------------------------------------
// 2. Within-backend bit-identity: golden checksums + batch == single

TEST(BackendGoldens, PerBackendChecksumsExact) {
  for (const k::Backend* b : k::available_backends()) {
    BackendScope scope(b->name);
    const Goldens& want = goldens_for(b->name);
    EXPECT_EQ(fnv1a_tensor(conv_output()), want.conv) << b->name;
    EXPECT_EQ(fnv1a_tensor(dense_output()), want.dense) << b->name;
    const auto back = conv_backward_output();
    EXPECT_EQ(fnv1a_f32(back.data(), back.size()), want.backward) << b->name;
    EXPECT_EQ(fnv1a_tensor(synth_output()), want.synth) << b->name;
  }
}

TEST(BackendGoldens, BatchMatchesSinglePerBackend) {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  for (const k::Backend* b : k::available_backends()) {
    BackendScope scope(b->name);
    auto net = core::make_bl1_architecture(spec, 77);
    util::Rng rng(7);
    std::vector<nn::Tensor> windows;
    std::vector<const nn::Tensor*> ptrs;
    for (int i = 0; i < 9; ++i) {
      windows.push_back(
          nn::Tensor::randn({spec.channels, spec.window_len}, rng, 1.0f));
    }
    for (const auto& w : windows) ptrs.push_back(&w);
    const auto batched = net.predict_proba_batch(ptrs.data(), ptrs.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const auto single = net.predict_proba(windows[i]);
      ASSERT_EQ(batched[i].size(), single.size()) << b->name;
      for (std::size_t c = 0; c < single.size(); ++c) {
        EXPECT_EQ(batched[i][c], single[c])
            << b->name << " window " << i << " class " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Cross-backend tolerance grid

TEST(BackendEquivalence, FloatKernelsAgreeWithinTolerance) {
  nn::Tensor conv_ref, dense_ref, synth_ref;
  {
    BackendScope scope("reference");
    conv_ref = conv_output();
    dense_ref = dense_output();
    synth_ref = synth_output();
  }
  for (const k::Backend* b : k::available_backends()) {
    if (std::string(b->name) == "reference") continue;
    BackendScope scope(b->name);
    const nn::Tensor conv_b = conv_output();
    ASSERT_EQ(conv_b.size(), conv_ref.size());
    for (std::size_t i = 0; i < conv_ref.size(); ++i) {
      EXPECT_NEAR(conv_b[i], conv_ref[i],
                  1e-4f * (1.0f + std::fabs(conv_ref[i])))
          << b->name << " conv[" << i << "]";
    }
    const nn::Tensor dense_b = dense_output();
    for (std::size_t i = 0; i < dense_ref.size(); ++i) {
      EXPECT_NEAR(dense_b[i], dense_ref[i],
                  1e-4f * (1.0f + std::fabs(dense_ref[i])))
          << b->name << " dense[" << i << "]";
    }
    // Synthesis runs in double; fused vs unfused det_sin differs only in
    // final-digit rounding before the float store.
    const nn::Tensor synth_b = synth_output();
    for (std::size_t i = 0; i < synth_ref.size(); ++i) {
      EXPECT_NEAR(synth_b[i], synth_ref[i],
                  1e-5f * (1.0f + std::fabs(synth_ref[i])))
          << b->name << " synth[" << i << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// 4. Int8 serving path

TEST(Int8Path, BitIdenticalAcrossBackends) {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  util::Rng rng(55);
  std::vector<nn::Tensor> windows;
  for (int i = 0; i < 5; ++i) {
    windows.push_back(
        nn::Tensor::randn({spec.channels, spec.window_len}, rng, 1.0f));
  }
  std::vector<std::vector<float>> ref_probs;
  {
    BackendScope scope("reference");
    auto net = core::make_bl1_architecture(spec, 88);
    net.set_inference_bits(8);
    for (const auto& w : windows) ref_probs.push_back(net.predict_proba(w));
  }
  for (const k::Backend* b : k::available_backends()) {
    BackendScope scope(b->name);
    auto net = core::make_bl1_architecture(spec, 88);
    net.set_inference_bits(8);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const auto probs = net.predict_proba(windows[i]);
      ASSERT_EQ(probs.size(), ref_probs[i].size());
      for (std::size_t c = 0; c < probs.size(); ++c) {
        EXPECT_EQ(probs[c], ref_probs[i][c])
            << b->name << " window " << i << " class " << c;
      }
    }
  }
}

TEST(Int8Path, RoundTripAndSurgeryReset) {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  auto net = core::make_bl1_architecture(spec, 99);
  util::Rng rng(9);
  const nn::Tensor x =
      nn::Tensor::randn({spec.channels, spec.window_len}, rng, 1.0f);
  const nn::Tensor y_float = net.forward(x, false);
  EXPECT_EQ(net.inference_bits(), 32);

  net.set_inference_bits(8);
  EXPECT_EQ(net.inference_bits(), 8);
  const nn::Tensor y_int8 = net.forward(x, false);
  bool any_differs = false;
  for (std::size_t i = 0; i < y_float.size(); ++i) {
    any_differs = any_differs || y_float[i] != y_int8[i];
  }
  EXPECT_TRUE(any_differs) << "int8 path produced the float bits";

  // Clone carries the mode; switching back to 32 restores the float bits.
  nn::Sequential clone = net;
  EXPECT_EQ(clone.inference_bits(), 8);
  net.set_inference_bits(32);
  const nn::Tensor y_back = net.forward(x, false);
  for (std::size_t i = 0; i < y_float.size(); ++i) {
    EXPECT_EQ(y_back[i], y_float[i]);
  }

  EXPECT_THROW(net.set_inference_bits(1), std::invalid_argument);
  EXPECT_THROW(net.set_inference_bits(9), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 5. Trained fixture: accuracy + serve tier (shared across cases)

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class TrainedBackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 60;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static serve::ServeConfig small_config() {
    serve::ServeConfig cfg;
    cfg.users = 6;
    cfg.arrival_rate_hz = 2.0;
    cfg.shards = 3;
    cfg.policy = sim::PolicyKind::Origin;
    return cfg;
  }

  static std::vector<serve::CompletedSession> drain(serve::ServeConfig cfg) {
    serve::ServeLoop loop(*experiment_, cfg);
    loop.drain(32);
    return loop.completed_sessions();
  }

  static void expect_same(const std::vector<serve::CompletedSession>& a,
                          const std::vector<serve::CompletedSession>& b,
                          const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << what;
      EXPECT_EQ(a[i].completed_tick, b[i].completed_tick) << what;
      EXPECT_EQ(a[i].outputs_fnv1a, b[i].outputs_fnv1a) << what;
      EXPECT_EQ(a[i].outputs, b[i].outputs) << what;
      EXPECT_EQ(a[i].accuracy, b[i].accuracy) << what;
    }
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* TrainedBackendTest::experiment_ = nullptr;

/// Correct classifications of `model` over every sensor's held-out set.
int correct_count(std::array<nn::Sequential, data::kNumSensors> models,
                  const core::TrainedSystem& system) {
  int correct = 0;
  for (std::size_t s = 0; s < data::kNumSensors; ++s) {
    for (const auto& sample : system.test_sets[s]) {
      if (models[s].predict(sample.input) == sample.label) ++correct;
    }
  }
  return correct;
}

TEST_F(TrainedBackendTest, Int8AccuracyMatchesFloatAndFakeQuant) {
  const core::TrainedSystem& system = experiment_->system();
  int total = 0;
  for (const auto& set : system.test_sets) {
    total += static_cast<int>(set.size());
  }
  ASSERT_GT(total, 0);

  const int float_correct = correct_count(system.bl1_copy(), system);

  auto int8_models = system.bl1_copy();
  for (auto& m : int8_models) m.set_inference_bits(8);
  const int int8_correct = correct_count(std::move(int8_models), system);

  auto fake_models = system.bl1_copy();
  for (auto& m : fake_models) nn::quantize_weights(m, 8);
  const int fake_correct = correct_count(std::move(fake_models), system);

  // The acceptance gate: the int8 serving path classifies the eval set
  // exactly as well as the float path and the fake-quant simulation.
  EXPECT_EQ(int8_correct, float_correct) << "of " << total;
  EXPECT_EQ(fake_correct, float_correct) << "of " << total;
}

TEST_F(TrainedBackendTest, EnergyModelCreditsInt8Mode) {
  const core::TrainedSystem& system = experiment_->system();
  const std::vector<int> shape = {system.spec.channels,
                                  system.spec.window_len};
  nn::Sequential float_net = system.sensors[0].bl1;
  nn::Sequential int8_net = system.sensors[0].bl1;
  int8_net.set_inference_bits(8);
  const auto float_cost = nn::estimate_cost(float_net, shape);
  const auto int8_cost = nn::estimate_cost(int8_net, shape);
  const auto what_if = nn::estimate_quantized_cost(float_net, shape, 8);
  EXPECT_LT(int8_cost.energy_j, float_cost.energy_j);
  EXPECT_DOUBLE_EQ(int8_cost.energy_j, what_if.energy_j);
  EXPECT_EQ(int8_cost.macs, float_cost.macs);
}

TEST_F(TrainedBackendTest, ServeBitIdenticalAcrossThreadsPerBackend) {
  for (const k::Backend* b : k::available_backends()) {
    BackendScope scope(b->name);
    serve::ServeConfig cfg = small_config();
    cfg.threads = 1;
    const auto reference = drain(cfg);
    ASSERT_EQ(reference.size(), cfg.users) << b->name;
    for (unsigned threads : {2u, 8u}) {
      cfg.threads = threads;
      expect_same(reference, drain(cfg),
                  std::string(b->name) + " threads=" +
                      std::to_string(threads));
    }
  }
}

TEST_F(TrainedBackendTest, ServeInt8BitIdenticalAcrossThreadsAndBackends) {
  std::vector<serve::CompletedSession> reference;
  {
    BackendScope scope("reference");
    serve::ServeConfig cfg = small_config();
    cfg.bits = 8;
    cfg.threads = 1;
    reference = drain(cfg);
    ASSERT_EQ(reference.size(), cfg.users);
    cfg.threads = 8;
    expect_same(reference, drain(cfg), "int8 reference threads=8");
  }
  // Integer accumulation is exact, so the int8 serve results are the same
  // bits under every backend — unlike the float path.
  for (const k::Backend* b : k::available_backends()) {
    BackendScope scope(b->name);
    serve::ServeConfig cfg = small_config();
    cfg.bits = 8;
    cfg.threads = 2;
    expect_same(reference, drain(cfg), std::string("int8 ") + b->name);
  }
}

TEST_F(TrainedBackendTest, SnapshotRefusesBitsMismatch) {
  const std::string path = "test_backends_bits.snap";
  serve::ServeConfig cfg = small_config();
  serve::ServeLoop first(*experiment_, cfg);
  first.tick(4);
  first.save(path);

  serve::ServeConfig other = cfg;
  other.bits = 8;
  serve::ServeLoop second(*experiment_, other);
  EXPECT_THROW(second.restore(path), std::runtime_error);

  serve::ServeLoop third(*experiment_, cfg);
  EXPECT_NO_THROW(third.restore(path));
  std::remove(path.c_str());
}

TEST_F(TrainedBackendTest, SnapshotRefusesBackendMismatch) {
  const auto& all = k::available_backends();
  if (all.size() < 2) {
    GTEST_SKIP() << "only the reference backend is available";
  }
  const std::string path = "test_backends_backend.snap";
  serve::ServeConfig cfg = small_config();
  {
    BackendScope scope("reference");
    serve::ServeLoop first(*experiment_, cfg);
    first.tick(4);
    first.save(path);
  }
  {
    BackendScope scope(all.back()->name);
    serve::ServeLoop second(*experiment_, cfg);
    EXPECT_THROW(second.restore(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace origin
