#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace origin::sim {
namespace {

TEST(Calibration, ScaleMakesRatioExact) {
  const auto trace = energy::PowerTrace::generate_wifi_office({}, 1);
  const double cost = 5e-6;
  const double eff = 0.7;
  const double slot = 0.5;
  const double ratio = 6.0;
  const double scale = calibrate_harvest_scale(cost, trace, eff, slot, ratio);
  // With this scale, `ratio` slots of average harvest equal one inference.
  const double slot_harvest = scale * eff * trace.average_power_w() * slot;
  EXPECT_NEAR(ratio * slot_harvest, cost, 1e-12);
}

TEST(Calibration, Validation) {
  const auto trace = energy::PowerTrace::generate_wifi_office({}, 2);
  EXPECT_THROW(calibrate_harvest_scale(0.0, trace, 0.7, 0.5, 6.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_harvest_scale(1e-6, trace, 0.0, 0.5, 6.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_harvest_scale(1e-6, trace, 0.7, 0.0, 6.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_harvest_scale(1e-6, trace, 0.7, 0.5, 0.0),
               std::invalid_argument);
}

TEST(Calibration, HigherRatioMeansLessHarvest) {
  const auto trace = energy::PowerTrace::generate_wifi_office({}, 3);
  const double s6 = calibrate_harvest_scale(1e-6, trace, 0.7, 0.5, 6.0);
  const double s12 = calibrate_harvest_scale(1e-6, trace, 0.7, 0.5, 12.0);
  EXPECT_GT(s6, s12);
}

TEST(Names, PolicyKindStrings) {
  EXPECT_STREQ(to_string(PolicyKind::Naive), "naive");
  EXPECT_STREQ(to_string(PolicyKind::PlainRR), "rr");
  EXPECT_STREQ(to_string(PolicyKind::AAS), "aas");
  EXPECT_STREQ(to_string(PolicyKind::AASR), "aasr");
  EXPECT_STREQ(to_string(PolicyKind::Origin), "origin");
}

TEST(Names, ModelSetStrings) {
  EXPECT_STREQ(to_string(ModelSet::BL2), "bl2");
  EXPECT_STREQ(to_string(ModelSet::Relaxed), "relaxed");
}

}  // namespace
}  // namespace origin::sim
