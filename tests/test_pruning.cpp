#include "nn/pruning.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

Sequential conv_dense_net(std::uint64_t seed, int c1 = 6, int c2 = 8,
                          int hidden = 16) {
  util::Rng rng(seed);
  Sequential m;
  const int len1 = 16 - 3 + 1;      // conv1
  const int len2 = len1 / 2;        // pool
  const int len3 = len2 - 3 + 1;    // conv2
  m.emplace<Conv1D>(2, c1, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Conv1D>(c1, c2, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<Flatten>()
      .emplace<Dense>(c2 * len3, hidden, rng)
      .emplace<ReLU>()
      .emplace<Dense>(hidden, 4, rng);
  return m;
}

const std::vector<int> kInput = {2, 16};

TEST(Pruning, RemoveConvFilterPatchesNextConv) {
  auto m = conv_dense_net(1);
  remove_unit(m, kInput, 0, 2);
  auto* conv1 = dynamic_cast<Conv1D*>(&m.layer(0));
  auto* conv2 = dynamic_cast<Conv1D*>(&m.layer(3));
  ASSERT_NE(conv1, nullptr);
  ASSERT_NE(conv2, nullptr);
  EXPECT_EQ(conv1->out_channels(), 5);
  EXPECT_EQ(conv2->in_channels(), 5);
  // Forward still works with consistent shapes.
  EXPECT_NO_THROW(m.forward(Tensor(kInput), false));
}

TEST(Pruning, RemoveConvFilterBeforeFlattenPatchesDense) {
  auto m = conv_dense_net(2);
  const auto before_shape = m.output_shape(kInput);
  remove_unit(m, kInput, 3, 0);  // second conv feeds flatten->dense
  auto* conv2 = dynamic_cast<Conv1D*>(&m.layer(3));
  auto* dense = dynamic_cast<Dense*>(&m.layer(6));
  ASSERT_NE(conv2, nullptr);
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(conv2->out_channels(), 7);
  EXPECT_EQ(dense->in_features(), 7 * 5);
  EXPECT_EQ(m.output_shape(kInput), before_shape);
  EXPECT_NO_THROW(m.forward(Tensor(kInput), false));
}

TEST(Pruning, ZeroFilterRemovalPreservesOutputs) {
  // Removing a filter whose weights are all zero (and whose consumers'
  // corresponding weights are arbitrary) must not change the function if
  // we also zero the consumer columns; here we zero the filter AND check
  // that the network output changes only through the bias-free paths.
  auto m = conv_dense_net(3);
  auto* conv2 = dynamic_cast<Conv1D*>(&m.layer(3));
  ASSERT_NE(conv2, nullptr);
  // Zero filter 1 of conv2 and its bias: its activation becomes ReLU(0)=0.
  for (int ci = 0; ci < conv2->in_channels(); ++ci) {
    for (int k = 0; k < conv2->kernel(); ++k) conv2->weight().at(1, ci, k) = 0.0f;
  }
  conv2->bias()[1] = 0.0f;

  util::Rng rng(4);
  const Tensor x = Tensor::randn(kInput, rng, 1.0f);
  const Tensor before = m.forward(x, false);
  remove_unit(m, kInput, 3, 1);
  const Tensor after = m.forward(x, false);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-4);
  }
}

TEST(Pruning, ZeroDenseUnitRemovalPreservesOutputs) {
  auto m = conv_dense_net(5);
  auto* hidden = dynamic_cast<Dense*>(&m.layer(6));
  ASSERT_NE(hidden, nullptr);
  for (int i = 0; i < hidden->in_features(); ++i) hidden->weight().at(3, i) = 0.0f;
  hidden->bias()[3] = 0.0f;

  util::Rng rng(6);
  const Tensor x = Tensor::randn(kInput, rng, 1.0f);
  const Tensor before = m.forward(x, false);
  remove_unit(m, kInput, 6, 3);
  const Tensor after = m.forward(x, false);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-4);
  }
}

TEST(Pruning, RemoveUnitValidation) {
  auto m = conv_dense_net(7);
  EXPECT_THROW(remove_unit(m, kInput, 99, 0), std::invalid_argument);
  EXPECT_THROW(remove_unit(m, kInput, 1, 0), std::invalid_argument);  // relu
  // The classifier head has no downstream consumer.
  EXPECT_THROW(remove_unit(m, kInput, 8, 0), std::logic_error);
}

TEST(Pruning, BudgetIsMet) {
  auto m = conv_dense_net(8);
  ComputeProfile profile;
  const double before = estimate_cost(m, kInput, profile).energy_j;
  // A modest cut that stays above the structural floor (overhead +
  // min_channels everywhere) so the budget is reachable.
  PruneConfig cfg;
  cfg.energy_budget_j = 0.8 * before;
  const auto report = prune_to_energy_budget(m, kInput, profile, {}, cfg);
  EXPECT_TRUE(report.met_budget);
  EXPECT_LE(report.energy_after_j, cfg.energy_budget_j);
  EXPECT_LT(report.params_after, report.params_before);
  EXPECT_FALSE(report.steps.empty());
  EXPECT_NO_THROW(m.forward(Tensor(kInput), false));
}

TEST(Pruning, UnreachableBudgetStopsGracefully) {
  auto m = conv_dense_net(9, 3, 3, 3);
  ComputeProfile profile;
  PruneConfig cfg;
  cfg.energy_budget_j = 1e-12;  // below the fixed overhead: unreachable
  const auto report = prune_to_energy_budget(m, kInput, profile, {}, cfg);
  EXPECT_FALSE(report.met_budget);
  // Every prunable layer is at the floor.
  for (std::size_t i = 0; i < m.layer_count(); ++i) {
    if (auto* c = dynamic_cast<Conv1D*>(&m.layer(i))) {
      EXPECT_LE(c->out_channels(), cfg.min_channels);
    }
  }
  EXPECT_NO_THROW(m.forward(Tensor(kInput), false));
}

TEST(Pruning, InvalidBudgetThrows) {
  auto m = conv_dense_net(10);
  PruneConfig cfg;
  cfg.energy_budget_j = 0.0;
  EXPECT_THROW(prune_to_energy_budget(m, kInput, ComputeProfile{}, {}, cfg),
               std::invalid_argument);
}

TEST(Pruning, RemovesLowNormFiltersFirst) {
  auto m = conv_dense_net(11);
  auto* conv1 = dynamic_cast<Conv1D*>(&m.layer(0));
  ASSERT_NE(conv1, nullptr);
  // Make filter 4 of conv1 by far the weakest in the whole net.
  for (int ci = 0; ci < conv1->in_channels(); ++ci) {
    for (int k = 0; k < conv1->kernel(); ++k) {
      conv1->weight().at(4, ci, k) = 1e-6f;
    }
  }
  ComputeProfile profile;
  const double before = estimate_cost(m, kInput, profile).energy_j;
  PruneConfig cfg;
  cfg.energy_budget_j = 0.98 * before;  // remove only a unit or two
  const auto report = prune_to_energy_budget(m, kInput, profile, {}, cfg);
  ASSERT_FALSE(report.steps.empty());
  EXPECT_EQ(report.steps.front().layer_index, 0u);
  EXPECT_EQ(report.steps.front().unit, 4);
}

// Property sweep: pruning to any reachable budget keeps the network valid
// and monotonically smaller.
class PruneBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(PruneBudgetSweep, BudgetFractionRespected) {
  const double fraction = GetParam();
  auto m = conv_dense_net(static_cast<std::uint64_t>(fraction * 100));
  ComputeProfile profile;
  const double before = estimate_cost(m, kInput, profile).energy_j;
  const std::size_t params_before = m.param_count();
  PruneConfig cfg;
  cfg.energy_budget_j = fraction * before;
  const auto report = prune_to_energy_budget(m, kInput, profile, {}, cfg);
  EXPECT_LE(m.param_count(), params_before);
  EXPECT_LE(report.energy_after_j, report.energy_before_j);
  if (report.met_budget) {
    EXPECT_LE(report.energy_after_j, cfg.energy_budget_j * 1.0001);
  }
  // The surgically altered network still computes the right output shape.
  EXPECT_EQ(m.output_shape(kInput), std::vector<int>{4});
  EXPECT_NO_THROW(m.forward(Tensor(kInput), false));
}

INSTANTIATE_TEST_SUITE_P(Budgets, PruneBudgetSweep,
                         ::testing::Values(0.95, 0.85, 0.75, 0.65, 0.55, 0.45));

}  // namespace
}  // namespace origin::nn
