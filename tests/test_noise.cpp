#include "data/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace origin::data {
namespace {

nn::Tensor sine_window() {
  nn::Tensor t({2, 64});
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 64; ++i) {
      t.at(c, i) = static_cast<float>(std::sin(0.3 * i + c));
    }
  }
  return t;
}

TEST(Noise, AchievesRequestedSnr) {
  util::Rng rng(1);
  for (double target : {0.0, 10.0, 20.0, 30.0}) {
    // Average measured SNR over several trials (single draws fluctuate).
    double sum = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      const nn::Tensor clean = sine_window();
      nn::Tensor noisy = clean;
      add_gaussian_noise_snr(noisy, target, rng);
      sum += measure_snr_db(clean, noisy);
    }
    EXPECT_NEAR(sum / trials, target, 1.5) << "target " << target << " dB";
  }
}

TEST(Noise, HigherSnrMeansLessDistortion) {
  util::Rng rng(2);
  nn::Tensor clean = sine_window();
  nn::Tensor low = clean, high = clean;
  add_gaussian_noise_snr(low, 5.0, rng);
  add_gaussian_noise_snr(high, 30.0, rng);
  double dl = 0.0, dh = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    dl += std::fabs(low[i] - clean[i]);
    dh += std::fabs(high[i] - clean[i]);
  }
  EXPECT_GT(dl, dh);
}

TEST(Noise, SilentWindowUntouched) {
  util::Rng rng(3);
  nn::Tensor silent({2, 8});
  add_gaussian_noise_snr(silent, 20.0, rng);
  for (std::size_t i = 0; i < silent.size(); ++i) {
    EXPECT_FLOAT_EQ(silent[i], 0.0f);
  }
}

TEST(Noise, DcOnlyWindowUntouched) {
  // AC power is zero for a constant window; no noise should be added.
  util::Rng rng(4);
  nn::Tensor dc = nn::Tensor::full({2, 8}, 3.0f);
  add_gaussian_noise_snr(dc, 20.0, rng);
  for (std::size_t i = 0; i < dc.size(); ++i) EXPECT_FLOAT_EQ(dc[i], 3.0f);
}

TEST(Noise, EmptyWindowNoop) {
  util::Rng rng(5);
  nn::Tensor empty;
  EXPECT_NO_THROW(add_gaussian_noise_snr(empty, 20.0, rng));
}

TEST(Noise, MeasureSnrShapeMismatchThrows) {
  EXPECT_THROW(measure_snr_db(nn::Tensor({2}), nn::Tensor({3})),
               std::invalid_argument);
}

TEST(Noise, MeasureSnrIdenticalIsHuge) {
  const nn::Tensor w = sine_window();
  EXPECT_GT(measure_snr_db(w, w), 1e6);
}

}  // namespace
}  // namespace origin::data
