// Failure injection and hybrid-supply tests: the paper's Discussion claims
// Origin "poses minimum risk if one of the sensors fails" and extends to
// battery/hybrid supplies — these tests pin the mechanics down.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace origin::sim {
namespace {

std::array<nn::Sequential, 3> tiny_models(const data::DatasetSpec& spec) {
  std::array<nn::Sequential, 3> models;
  for (int s = 0; s < 3; ++s) {
    util::Rng rng(300 + static_cast<std::uint64_t>(s));
    models[static_cast<std::size_t>(s)]
        .emplace<nn::Conv1D>(spec.channels, 2, 8, 4, rng)
        .emplace<nn::ReLU>()
        .emplace<nn::Flatten>()
        .emplace<nn::Dense>(2 * 15, spec.num_classes(), rng);
  }
  return models;
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : spec_(data::dataset_spec(data::DatasetKind::MHealthLike)),
        trace_(energy::PowerTrace::generate_wifi_office({}, 21)),
        stream_(data::make_stream(spec_, 120, data::reference_user(), 22)) {}

  SimulatorConfig rich_config() {
    SimulatorConfig cfg;
    auto models = tiny_models(spec_);
    const auto cost = nn::estimate_cost(
        models[0], {spec_.channels, spec_.window_len}, cfg.node.compute);
    net::Message msg;
    const double scale = calibrate_harvest_scale(
        cost.energy_j + cfg.node.radio.tx_energy_j(msg), trace_,
        cfg.harvester_efficiency, spec_.slot_seconds(), 2.0);
    for (auto& s : cfg.harvest_scale) s *= scale;
    return cfg;
  }

  data::DatasetSpec spec_;
  energy::PowerTrace trace_;
  data::Stream stream_;
};

TEST_F(FailureTest, FailedNodeStopsCompleting) {
  auto cfg = rich_config();
  cfg.node_failure_at_s[0] = 0.0;  // chest dead from the start
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  const auto r = sim.run(stream_);
  EXPECT_EQ(r.node_counters[0].completions, 0u);
  EXPECT_GT(r.node_counters[1].completions, 0u);
  EXPECT_GT(r.node_counters[2].completions, 0u);
  // Attempts on the dead node count as energy skips.
  EXPECT_EQ(r.node_counters[0].skipped_no_energy, r.node_counters[0].attempts);
}

TEST_F(FailureTest, MidRunFailureSplitsBehaviour) {
  auto cfg = rich_config();
  cfg.node_failure_at_s[1] = 30.0;  // ankle dies halfway (120 slots = 60 s)
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  const auto r = sim.run(stream_);
  // It completed before the failure but not near the end.
  EXPECT_GT(r.node_counters[1].completions, 0u);
  EXPECT_LT(r.node_counters[1].completions, r.node_counters[2].completions);
}

TEST_F(FailureTest, AasRoutesAroundDeadSensor) {
  auto cfg = rich_config();
  cfg.node_failure_at_s[0] = 0.0;
  core::RankTable ranks(spec_.num_classes());  // chest ranked best everywhere
  core::AASRPolicy policy(core::ExtendedRoundRobin(6), ranks);
  policy.set_recall_horizon_s(9.0);
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  const auto r = sim.run(stream_);
  // The energy-fallback reroutes work to the living sensors: the system
  // still completes inferences at a healthy rate.
  EXPECT_GT(r.completion.completions, stream_.slots.size() / 6);
  EXPECT_EQ(r.node_counters[0].completions, 0u);
}

TEST_F(FailureTest, FailedNodeHarvestsNothing) {
  auto cfg = rich_config();
  cfg.node_failure_at_s[2] = 0.0;
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  const auto r = sim.run(stream_);
  EXPECT_DOUBLE_EQ(r.node_counters[2].harvested_j, 0.0);
}

TEST_F(FailureTest, TrickleChargeKeepsNodeAlive) {
  // Zero out the RF harvest (tiny scale) and power the node purely from a
  // battery trickle sized for one inference per two slots.
  SimulatorConfig cfg;
  auto models = tiny_models(spec_);
  const auto cost = nn::estimate_cost(
      models[0], {spec_.channels, spec_.window_len}, cfg.node.compute);
  net::Message msg;
  const double total = cost.energy_j + cfg.node.radio.tx_energy_j(msg);
  for (auto& s : cfg.harvest_scale) s = 1e-12;
  cfg.node.trickle_power_w = total / (2.0 * spec_.slot_seconds());
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(6)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  const auto r = sim.run(stream_);
  // RR6 asks each node for one inference per 3 s; the trickle sustains it.
  EXPECT_GT(r.completion.attempt_success_rate(), 95.0);
}

TEST_F(FailureTest, NegativeTrickleRejected) {
  SimulatorConfig cfg;
  cfg.node.trickle_power_w = -1.0;
  core::PlainRRPolicy policy{core::ExtendedRoundRobin(3)};
  Simulator sim(spec_, tiny_models(spec_), &trace_, &policy, cfg);
  EXPECT_THROW(sim.run(stream_), std::invalid_argument);
}

TEST_F(FailureTest, EnergyPacedPolicyAdaptsRate) {
  core::RankTable ranks(spec_.num_classes());
  core::ConfidenceMatrix conf(spec_.num_classes(), 0.1);
  core::EnergyPacedOriginPolicy paced(ranks, conf, 2);
  paced.set_recall_horizon_s(9.0);
  Simulator rich(spec_, tiny_models(spec_), &trace_, &paced, rich_config());
  const auto r_rich = rich.run(stream_);

  core::EnergyPacedOriginPolicy paced2(ranks, conf, 2);
  paced2.set_recall_horizon_s(9.0);
  SimulatorConfig poor_cfg = rich_config();
  for (auto& s : poor_cfg.harvest_scale) s *= 0.1;
  Simulator poor(spec_, tiny_models(spec_), &trace_, &paced2, poor_cfg);
  const auto r_poor = poor.run(stream_);

  // Self-pacing: the abundant-energy deployment attempts more often.
  EXPECT_GT(r_rich.completion.attempts, r_poor.completion.attempts);
  // And it never attempts without a full charge somewhere.
  EXPECT_GT(r_rich.completion.attempt_success_rate(), 95.0);
  EXPECT_THROW(core::EnergyPacedOriginPolicy(ranks, conf, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace origin::sim
