#include "data/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace origin::data {
namespace {

class MarkovTest : public ::testing::Test {
 protected:
  DatasetSpec spec = dataset_spec(DatasetKind::MHealthLike);
};

TEST_F(MarkovTest, SegmentsTileTheDuration) {
  ActivityMarkov markov(spec);
  util::Rng rng(1);
  const auto segments = markov.generate(600.0, rng);
  ASSERT_FALSE(segments.empty());
  EXPECT_DOUBLE_EQ(segments.front().start_s, 0.0);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_NEAR(segments[i].start_s, segments[i - 1].end_s(), 1e-9);
  }
  EXPECT_NEAR(segments.back().end_s(), 600.0, 1e-6);
}

TEST_F(MarkovTest, NoSelfTransitions) {
  ActivityMarkov markov(spec);
  util::Rng rng(2);
  const auto segments = markov.generate(2000.0, rng);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_NE(segments[i].activity, segments[i - 1].activity);
  }
}

TEST_F(MarkovTest, DwellTimesRespectMinimum) {
  MarkovConfig cfg;
  cfg.min_dwell_s = 5.0;
  ActivityMarkov markov(spec, cfg);
  util::Rng rng(3);
  const auto segments = markov.generate(2000.0, rng);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    EXPECT_GE(segments[i].duration_s, 5.0 - 1e-9);
  }
}

TEST_F(MarkovTest, MeanDwellApproximatesConfig) {
  MarkovConfig cfg;
  cfg.mean_dwell_s = 20.0;
  cfg.min_dwell_s = 0.1;
  ActivityMarkov markov(spec, cfg);
  util::Rng rng(4);
  const auto segments = markov.generate(50000.0, rng);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) total += segments[i].duration_s;
  const double mean = total / static_cast<double>(segments.size() - 1);
  EXPECT_NEAR(mean, 20.0, 2.5);
}

TEST_F(MarkovTest, TransitionWeightsFavorAdjacentIntensity) {
  ActivityMarkov markov(spec);
  EXPECT_GT(markov.transition_weight(Activity::Jogging, Activity::Running),
            markov.transition_weight(Activity::Walking, Activity::Running));
  EXPECT_DOUBLE_EQ(markov.transition_weight(Activity::Walking, Activity::Walking), 0.0);
}

TEST_F(MarkovTest, AllActivitiesEventuallyVisited) {
  ActivityMarkov markov(spec);
  util::Rng rng(5);
  const auto segments = markov.generate(20000.0, rng);
  std::set<Activity> seen;
  for (const auto& s : segments) seen.insert(s.activity);
  EXPECT_EQ(static_cast<int>(seen.size()), spec.num_classes());
}

TEST_F(MarkovTest, ActivityAtLookup) {
  std::vector<ActivitySegment> segments = {
      {Activity::Walking, 0.0, 10.0},
      {Activity::Running, 10.0, 5.0},
      {Activity::Cycling, 15.0, 20.0},
  };
  EXPECT_EQ(activity_at(segments, 0.0), Activity::Walking);
  EXPECT_EQ(activity_at(segments, 9.999), Activity::Walking);
  EXPECT_EQ(activity_at(segments, 10.0), Activity::Running);
  EXPECT_EQ(activity_at(segments, 14.0), Activity::Running);
  EXPECT_EQ(activity_at(segments, 30.0), Activity::Cycling);
  // Beyond the end: last segment persists.
  EXPECT_EQ(activity_at(segments, 99.0), Activity::Cycling);
}

TEST_F(MarkovTest, ActivityAtEmptyThrows) {
  EXPECT_THROW(activity_at({}, 1.0), std::invalid_argument);
}

TEST_F(MarkovTest, InvalidConfigThrows) {
  MarkovConfig bad;
  bad.mean_dwell_s = 0.0;
  EXPECT_THROW(ActivityMarkov(spec, bad), std::invalid_argument);
  ActivityMarkov ok(spec);
  util::Rng rng(6);
  EXPECT_THROW(ok.generate(0.0, rng), std::invalid_argument);
}

TEST_F(MarkovTest, DeterministicGivenSeed) {
  ActivityMarkov markov(spec);
  util::Rng a(7), b(7);
  const auto sa = markov.generate(500.0, a);
  const auto sb = markov.generate(500.0, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].activity, sb[i].activity);
    EXPECT_DOUBLE_EQ(sa[i].duration_s, sb[i].duration_s);
  }
}

}  // namespace
}  // namespace origin::data
