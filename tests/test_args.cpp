#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace origin::util {
namespace {

/// argv builder: parse() wants char**, tests want string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("test"));
    for (auto& arg : storage_) ptrs_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(ArgParser, BindsEveryTypeWithBothSyntaxes) {
  std::string name = "default";
  int count = 3;
  unsigned threads = 1;
  std::uint64_t seed = 7;
  double rate = 0.5;
  bool flag = false;

  ArgParser parser("tool", "summary");
  parser.add("name", &name, "a string");
  parser.add("count", &count, "an int");
  parser.add("threads", &threads, "an unsigned");
  parser.add("seed", &seed, "a u64");
  parser.add("rate", &rate, "a double");
  parser.add_switch("flag", &flag, "a switch");

  Argv argv({"--name", "abc", "--count=-4", "--threads", "8",
             "--seed=18446744073709551615", "--rate", "2.25", "--flag"});
  EXPECT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(count, -4);
  EXPECT_EQ(threads, 8u);
  EXPECT_EQ(seed, 18446744073709551615ull);
  EXPECT_EQ(rate, 2.25);
  EXPECT_TRUE(flag);
}

TEST(ArgParser, DefaultsSurviveWhenFlagsAbsent) {
  int count = 42;
  ArgParser parser("tool", "summary");
  parser.add("count", &count, "an int");
  Argv argv({});
  EXPECT_TRUE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(count, 42);
}

TEST(ArgParser, RejectsBadInput) {
  int count = 0;
  bool flag = false;
  ArgParser parser("tool", "summary");
  parser.add("count", &count, "an int");
  parser.add_switch("flag", &flag, "a switch");

  {
    Argv argv({"--nope", "1"});
    EXPECT_THROW(parser.parse(argv.argc(), argv.argv()),
                 std::invalid_argument);
  }
  {
    Argv argv({"--count", "twelve"});
    EXPECT_THROW(parser.parse(argv.argc(), argv.argv()),
                 std::invalid_argument);
  }
  {
    Argv argv({"--count"});  // missing value
    EXPECT_THROW(parser.parse(argv.argc(), argv.argv()),
                 std::invalid_argument);
  }
  {
    Argv argv({"--flag=yes"});  // switches take no value
    EXPECT_THROW(parser.parse(argv.argc(), argv.argv()),
                 std::invalid_argument);
  }
  {
    Argv argv({"stray"});
    EXPECT_THROW(parser.parse(argv.argc(), argv.argv()),
                 std::invalid_argument);
  }
}

TEST(ArgParser, HelpReturnsFalseAndUsageListsFlags) {
  int count = 5;
  ArgParser parser("mytool", "does things");
  parser.add("count", &count, "how many");
  Argv argv({"--help"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));

  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("mytool"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
}

}  // namespace
}  // namespace origin::util
