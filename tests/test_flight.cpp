// Serve-tier flight recorder: typed event construction, bounded-ring
// wrap, and the determinism contract — the folded event stream of a
// served run is bit-identical at any thread count (at fixed tick
// chunking), and the HTTP routes expose it in both formats. The suite
// stays meaningful under -DORIGIN_TRACE=OFF: unit cases always run (the
// classes stay functional), end-to-end cases flip to asserting that
// recording is compiled out.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/prometheus.hpp"
#include "serve/endpoint.hpp"
#include "serve/serve_loop.hpp"

namespace origin::serve {
namespace {

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class FlightServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 60;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static ServeConfig small_config() {
    ServeConfig cfg;
    cfg.users = 6;
    cfg.arrival_rate_hz = 2.0;
    cfg.shards = 3;
    cfg.policy = sim::PolicyKind::Origin;
    return cfg;
  }

  static std::vector<obs::TraceEvent> drain_flight(unsigned threads) {
    ServeConfig cfg = small_config();
    cfg.threads = threads;
    ServeLoop loop(*experiment_, cfg);
    // Fixed chunk: the fold boundaries (and so the stream) depend on tick
    // chunking, which is part of the workload — never on threads.
    loop.drain(/*chunk=*/8);
    return loop.flight_events();
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* FlightServeTest::experiment_ = nullptr;

TEST(FlightLog, TypedHelpersFillTheAgreedFields) {
  obs::FlightLog log;
  log.admit(7, 2, 1.5, 3, 60);
  log.step(7, 2, 2.0, 0.5, 4, 1, 1, 0.123, 0.01);
  log.step(7, 2, 2.5, 0.5, 5, 0, 2, 0.2, 0.02);
  log.hop(7, 2, 2.0, 4, 3);
  log.nvp_save(7, 2, 2.0, 4, 1, 2);
  log.nvp_restore(7, 2, 2.0, 4, 0, 1);
  log.session_end(7, 2, 30.0, 60, 60, 0.75, 88.5, true);
  ASSERT_EQ(log.size(), 7u);

  const auto& e = log.events();
  EXPECT_EQ(e[0].kind, obs::EventKind::Admit);
  EXPECT_EQ(e[0].session, 7);
  EXPECT_EQ(e[0].track, 2);
  EXPECT_EQ(e[0].slot, 3);     // arrival tick
  EXPECT_EQ(e[0].count, 60);   // slots total

  EXPECT_EQ(e[1].kind, obs::EventKind::Step);
  EXPECT_EQ(e[1].cls, 1);      // predicted
  EXPECT_EQ(e[1].count, 1);    // truth
  EXPECT_TRUE(e[1].flag);      // correct
  EXPECT_DOUBLE_EQ(e[1].value, 0.123);  // stored total J
  EXPECT_DOUBLE_EQ(e[1].aux, 0.01);     // stored min J
  EXPECT_FALSE(e[2].flag);     // predicted 0 != truth 2

  EXPECT_EQ(e[3].kind, obs::EventKind::Hop);
  EXPECT_EQ(e[3].count, 3);

  EXPECT_EQ(e[4].kind, obs::EventKind::NvpSave);
  EXPECT_EQ(e[4].cls, 1);      // sensor
  EXPECT_EQ(e[4].count, 2);    // checkpoints this slot
  EXPECT_EQ(e[5].kind, obs::EventKind::NvpRestore);

  EXPECT_EQ(e[6].kind, obs::EventKind::SessionEnd);
  EXPECT_EQ(e[6].slot, 60);    // completed tick
  EXPECT_DOUBLE_EQ(e[6].value, 0.75);
  EXPECT_DOUBLE_EQ(e[6].aux, 88.5);
  EXPECT_TRUE(e[6].flag);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(FlightRecorder, FoldAppendsAndClearsInOrder) {
  obs::FlightRecorder rec(16);
  obs::FlightLog a, b;
  a.step(0, 0, 0.0, 0.5, 0, 1, 1, 0.1, 0.01);
  a.step(0, 0, 0.5, 0.5, 1, 1, 1, 0.1, 0.01);
  b.step(1, 1, 0.0, 0.5, 0, 2, 2, 0.2, 0.02);
  rec.fold(a);
  rec.fold(b);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 0u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  // Shard 0's events precede shard 1's — the fold order is the caller's.
  EXPECT_EQ(events[0].session, 0);
  EXPECT_EQ(events[1].session, 0);
  EXPECT_EQ(events[2].session, 1);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, RingWrapDropsOldestAndCounts) {
  obs::FlightRecorder rec(4);
  obs::FlightLog log;
  for (int i = 0; i < 10; ++i) {
    log.step(/*session=*/i, 0, 0.0, 0.5, i, 1, 1, 0.1, 0.01);
  }
  rec.fold(log);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first.
  EXPECT_EQ(events.front().session, 6);
  EXPECT_EQ(events.back().session, 9);

  EXPECT_EQ(rec.recent(2).size(), 2u);
  EXPECT_EQ(rec.recent(2).front().session, 8);
  EXPECT_EQ(rec.recent(99).size(), 4u);

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, SessionQueryFiltersById) {
  obs::FlightRecorder rec(16);
  obs::FlightLog log;
  log.admit(3, 0, 0.0, 0, 60);
  log.step(3, 0, 0.0, 0.5, 0, 1, 1, 0.1, 0.01);
  log.step(5, 0, 0.0, 0.5, 0, 2, 2, 0.2, 0.02);
  log.session_end(3, 0, 30.0, 59, 60, 0.8, 90.0, true);
  rec.fold(log);
  const auto three = rec.session(3);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[0].kind, obs::EventKind::Admit);
  EXPECT_EQ(three[2].kind, obs::EventKind::SessionEnd);
  EXPECT_EQ(rec.session(5).size(), 1u);
  EXPECT_TRUE(rec.session(42).empty());
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  obs::FlightRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  obs::FlightLog log;
  log.step(0, 0, 0.0, 0.5, 0, 1, 1, 0.1, 0.01);
  log.step(1, 0, 0.5, 0.5, 1, 1, 1, 0.1, 0.01);
  rec.fold(log);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.events().front().session, 1);
}

TEST_F(FlightServeTest, StreamBitIdenticalAcrossThreadCounts) {
  const auto reference = drain_flight(1);
  if (!obs::kTraceEnabled) {
    EXPECT_TRUE(reference.empty());
    return;
  }
  ASSERT_FALSE(reference.empty());
  for (unsigned threads : {2u, 8u}) {
    const auto events = drain_flight(threads);
    ASSERT_EQ(events.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(events[i], reference[i])
          << "event " << i << " diverges at threads=" << threads;
    }
  }
}

TEST_F(FlightServeTest, StreamCoversTheSessionLifecycle) {
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  loop.drain(8);
  if (!obs::kTraceEnabled) {
    EXPECT_FALSE(loop.flight_enabled());
    EXPECT_TRUE(loop.flight_events().empty());
    return;
  }
  ASSERT_TRUE(loop.flight_enabled());

  std::size_t admits = 0, steps = 0, ends = 0;
  for (const auto& e : loop.flight_events()) {
    switch (e.kind) {
      case obs::EventKind::Admit: ++admits; break;
      case obs::EventKind::Step: ++steps; break;
      case obs::EventKind::SessionEnd: ++ends; break;
      default: break;
    }
  }
  // Every admitted session admits once, steps its whole stream, ends once.
  EXPECT_EQ(admits, cfg.users);
  EXPECT_EQ(ends, cfg.users);
  EXPECT_EQ(steps, cfg.users * 60u);

  // The per-session view is the stream filtered by id: admit first,
  // session-end last, every step's session-local slot increasing.
  const auto one = loop.flight_session(0);
  ASSERT_GE(one.size(), 3u);
  EXPECT_EQ(one.front().kind, obs::EventKind::Admit);
  EXPECT_EQ(one.back().kind, obs::EventKind::SessionEnd);
  std::int64_t prev_slot = -1;
  for (const auto& e : one) {
    if (e.kind != obs::EventKind::Step) continue;
    EXPECT_GT(e.slot, prev_slot);
    prev_slot = e.slot;
  }
}

TEST_F(FlightServeTest, FlightCapacityZeroDisablesRecording) {
  ServeConfig cfg = small_config();
  cfg.flight_capacity = 0;
  ServeLoop loop(*experiment_, cfg);
  loop.drain(8);
  EXPECT_FALSE(loop.flight_enabled());
  EXPECT_TRUE(loop.flight_events().empty());
  EXPECT_TRUE(loop.flight_recent(8).empty());
  EXPECT_TRUE(loop.flight_session(0).empty());
  EXPECT_EQ(loop.flight_dropped(), 0u);
}

TEST_F(FlightServeTest, EndpointServesTraceAndPrometheusRoutes) {
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  loop.drain(8);
  ServeEndpoint endpoint(loop, nullptr);

  const auto get = [&](const std::string& target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    const auto q = target.find('?');
    request.path = target.substr(0, q);
    if (q != std::string::npos) request.query = target.substr(q + 1);
    return endpoint.handle(request);
  };

  // Prometheus exposition: typed counter series with the content type a
  // scraper expects, histogram buckets cumulative up to +Inf.
  const HttpResponse prom = get("/metrics?format=prom");
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.content_type, obs::kPrometheusContentType);
  EXPECT_NE(prom.body.find("# TYPE serve_slots_served_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("serve_step_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_EQ(get("/metrics?format=nope").status, 400);
  EXPECT_EQ(get("/metrics").status, 200);  // default stays JSON

  // SLO block inside /status.
  const HttpResponse status = get("/status");
  EXPECT_NE(status.body.find("\"slo\""), std::string::npos);
  EXPECT_NE(status.body.find("\"step_p95_us\""), std::string::npos);
  EXPECT_NE(status.body.find("\"admission_backlog\""), std::string::npos);

  const HttpResponse recent = get("/trace/recent?n=16");
  const HttpResponse chrome = get("/trace/recent?n=16&format=chrome");
  const HttpResponse one = get("/trace?session=0");
  if (!obs::kTraceEnabled) {
    EXPECT_EQ(recent.status, 404);
    EXPECT_EQ(chrome.status, 404);
    EXPECT_EQ(one.status, 404);
    return;
  }
  EXPECT_EQ(recent.status, 200);
  EXPECT_EQ(recent.content_type, "application/x-ndjson");
  EXPECT_NE(recent.body.find("\"kind\":\"step\""), std::string::npos);
  EXPECT_EQ(chrome.status, 200);
  EXPECT_NE(chrome.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("\"session\":0"), std::string::npos);
  EXPECT_EQ(get("/trace").status, 400);           // missing session=
  EXPECT_EQ(get("/trace?session=abc").status, 400);
  EXPECT_EQ(get("/trace/recent?n=abc").status, 400);
}

}  // namespace
}  // namespace origin::serve
