#include "data/activity.hpp"

#include <gtest/gtest.h>

namespace origin::data {
namespace {

TEST(Activity, NamesRoundtrip) {
  for (int i = 0; i < kNumActivityKinds; ++i) {
    const auto a = static_cast<Activity>(i);
    EXPECT_EQ(activity_from_string(to_string(a)), a);
  }
}

TEST(Activity, ParseIsCaseInsensitive) {
  EXPECT_EQ(activity_from_string("  WALKING "), Activity::Walking);
  EXPECT_EQ(activity_from_string("Cycling"), Activity::Cycling);
}

TEST(Activity, ParseUnknownThrows) {
  EXPECT_THROW(activity_from_string("swimming"), std::invalid_argument);
}

TEST(Sensor, NamesRoundtrip) {
  for (int i = 0; i < kNumSensors; ++i) {
    const auto s = static_cast<SensorLocation>(i);
    EXPECT_EQ(sensor_from_string(to_string(s)), s);
  }
  EXPECT_THROW(sensor_from_string("hip"), std::invalid_argument);
}

TEST(Sensor, SchedulingOrderMatchesFig3) {
  const auto order = all_sensors();
  EXPECT_EQ(order[0], SensorLocation::Chest);
  EXPECT_EQ(order[1], SensorLocation::RightWrist);
  EXPECT_EQ(order[2], SensorLocation::LeftAnkle);
}

TEST(DatasetSpec, MHealthHasSixClasses) {
  const auto spec = dataset_spec(DatasetKind::MHealthLike);
  EXPECT_EQ(spec.num_classes(), 6);
  EXPECT_EQ(spec.class_of(Activity::Jogging), 4);
}

TEST(DatasetSpec, Pamap2LacksJogging) {
  const auto spec = dataset_spec(DatasetKind::Pamap2Like);
  EXPECT_EQ(spec.num_classes(), 5);
  EXPECT_EQ(spec.class_of(Activity::Jogging), -1);
  EXPECT_EQ(spec.class_of(Activity::Jumping), 4);
}

TEST(DatasetSpec, ActivityOfRoundtrip) {
  const auto spec = dataset_spec(DatasetKind::MHealthLike);
  for (int c = 0; c < spec.num_classes(); ++c) {
    EXPECT_EQ(spec.class_of(spec.activity_of(c)), c);
  }
  EXPECT_THROW(spec.activity_of(-1), std::out_of_range);
  EXPECT_THROW(spec.activity_of(6), std::out_of_range);
}

TEST(DatasetSpec, SlotAndWindowSeconds) {
  const auto spec = dataset_spec(DatasetKind::MHealthLike);
  EXPECT_DOUBLE_EQ(spec.slot_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(spec.window_seconds(), 1.28);
}

TEST(Activity, IntensityOrdering) {
  EXPECT_LT(activity_intensity(Activity::Walking),
            activity_intensity(Activity::Jogging));
  EXPECT_LT(activity_intensity(Activity::Jogging),
            activity_intensity(Activity::Running));
}

}  // namespace
}  // namespace origin::data
