// Numerical gradient checking — the backprop correctness property tests.
// For each architecture under test we compare every analytic parameter
// gradient and the input gradient against central finite differences of
// the scalar loss.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

double loss_of(Sequential& model, const Tensor& input, int target) {
  const Tensor logits = model.forward(input, /*train=*/false);
  return softmax_cross_entropy(logits, target).loss;
}

/// Checks d(loss)/d(param) for every parameter via central differences.
void check_param_gradients(Sequential& model, const Tensor& input, int target,
                           double eps = 1e-3, double tol = 2e-2) {
  model.zero_grads();
  // train=true so layers cache what backward() needs (none of the models
  // under test contain Dropout, so results match the inference path).
  const Tensor logits = model.forward(input, /*train=*/true);
  model.backward(softmax_cross_entropy(logits, target).grad);

  const auto params = model.params();
  const auto grads = model.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p]->size(); ++i) {
      const float saved = (*params[p])[i];
      (*params[p])[i] = saved + static_cast<float>(eps);
      const double lp = loss_of(model, input, target);
      (*params[p])[i] = saved - static_cast<float>(eps);
      const double lm = loss_of(model, input, target);
      (*params[p])[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = (*grads[p])[i];
      const double denom = std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      ASSERT_NEAR(analytic / denom, numeric / denom, tol)
          << "param tensor " << p << " element " << i;
    }
  }
}

/// Checks d(loss)/d(input) via the gradient returned through backward().
void check_input_gradient(Sequential& model, Tensor input, int target,
                          double eps = 1e-3, double tol = 2e-2) {
  model.zero_grads();
  Tensor x = input;
  // Manually thread the backward to recover the input gradient.
  std::vector<Tensor> activations;
  activations.push_back(x);
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    activations.push_back(model.layer(l).forward(activations.back(), true));
  }
  Tensor g = softmax_cross_entropy(activations.back(), target).grad;
  for (std::size_t l = model.layer_count(); l-- > 0;) {
    g = model.layer(l).backward(g);
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float saved = input[i];
    input[i] = saved + static_cast<float>(eps);
    const double lp = loss_of(model, input, target);
    input[i] = saved - static_cast<float>(eps);
    const double lm = loss_of(model, input, target);
    input[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double denom = std::max({1.0, std::fabs(numeric), std::fabs(static_cast<double>(g[i]))});
    ASSERT_NEAR(g[i] / denom, numeric / denom, tol) << "input element " << i;
  }
}

Tensor random_input(const std::vector<int>& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(shape, rng, 1.0f);
}

TEST(GradCheck, DenseOnly) {
  util::Rng rng(100);
  Sequential m;
  m.emplace<Dense>(5, 4, rng).emplace<Dense>(4, 3, rng);
  const Tensor x = random_input({5}, 1);
  check_param_gradients(m, x, 2);
  check_input_gradient(m, x, 2);
}

TEST(GradCheck, DenseRelu) {
  util::Rng rng(101);
  Sequential m;
  m.emplace<Dense>(6, 8, rng).emplace<ReLU>().emplace<Dense>(8, 3, rng);
  const Tensor x = random_input({6}, 2);
  check_param_gradients(m, x, 0);
  check_input_gradient(m, x, 0);
}

TEST(GradCheck, Conv1DOnly) {
  util::Rng rng(102);
  Sequential m;
  m.emplace<Conv1D>(2, 3, 3, 1, rng).emplace<Flatten>().emplace<Dense>(3 * 6, 2, rng);
  const Tensor x = random_input({2, 8}, 3);
  check_param_gradients(m, x, 1);
  check_input_gradient(m, x, 1);
}

TEST(GradCheck, Conv1DStride2) {
  util::Rng rng(103);
  Sequential m;
  m.emplace<Conv1D>(2, 2, 3, 2, rng).emplace<Flatten>().emplace<Dense>(2 * 4, 3, rng);
  const Tensor x = random_input({2, 9}, 4);
  check_param_gradients(m, x, 2);
  check_input_gradient(m, x, 2);
}

TEST(GradCheck, ConvReluPoolDense) {
  util::Rng rng(104);
  Sequential m;
  m.emplace<Conv1D>(2, 3, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Flatten>()
      .emplace<Dense>(3 * 5, 3, rng);
  const Tensor x = random_input({2, 12}, 5);
  check_param_gradients(m, x, 0);
  check_input_gradient(m, x, 0);
}

TEST(GradCheck, TwoConvStages) {
  util::Rng rng(105);
  Sequential m;
  m.emplace<Conv1D>(3, 4, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Conv1D>(4, 3, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<Flatten>()
      .emplace<Dense>(3 * 4, 2, rng);
  const Tensor x = random_input({3, 15}, 6);
  check_param_gradients(m, x, 1);
  check_input_gradient(m, x, 1);
}

TEST(GradCheck, SoftmaxLayerJacobian) {
  // Standalone softmax layer backward against MSE-style upstream gradient.
  Softmax sm;
  const Tensor x = random_input({5}, 7);
  Tensor y = sm.forward(x, true);
  const Tensor upstream({5}, {0.3f, -0.2f, 0.5f, 0.1f, -0.7f});
  const Tensor g = sm.backward(upstream);

  const double eps = 1e-4;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    Softmax s2;
    const Tensor yp = s2.forward(xp, false);
    const Tensor ym = s2.forward(xm, false);
    double numeric = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      numeric += upstream[j] * (yp[j] - ym[j]) / (2.0 * eps);
    }
    ASSERT_NEAR(g[i], numeric, 1e-3) << "softmax input " << i;
  }
}

TEST(GradCheck, SoftCrossEntropyGradient) {
  const Tensor logits({4}, {0.5f, -1.0f, 2.0f, 0.0f});
  const std::vector<float> target = {0.1f, 0.2f, 0.6f, 0.1f};
  const LossResult res = softmax_cross_entropy_soft(logits, target);
  // float32 loss values limit finite-difference precision; use a larger
  // step and a tolerance matched to it.
  const double eps = 5e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy_soft(lp, target).loss -
                            softmax_cross_entropy_soft(lm, target).loss) /
                           (2.0 * eps);
    ASSERT_NEAR(res.grad[i], numeric, 5e-3);
  }
}

TEST(GradCheck, HardCrossEntropyMatchesSoftOneHot) {
  const Tensor logits({3}, {0.2f, 1.4f, -0.3f});
  const LossResult hard = softmax_cross_entropy(logits, 1);
  const LossResult soft = softmax_cross_entropy_soft(logits, {0.0f, 1.0f, 0.0f});
  EXPECT_NEAR(hard.loss, soft.loss, 1e-6);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(hard.grad[i], soft.grad[i], 1e-6);
  }
}

}  // namespace
}  // namespace origin::nn
