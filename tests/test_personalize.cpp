// Fleet-scale personalization contracts: the delta codec's projection
// property (apply ∘ encode is idempotent, so stored and live weights
// never diverge), parallel pipeline calibration bit-identical to the
// serial oracle at any thread count, and in-shard bounded fine-tuning
// bit-identical across thread counts and a mid-flight snapshot/restore
// split, with the optimizer-step budget and the delta-vs-full-file size
// advantage pinned.
#include "serve/personalize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/delta.hpp"
#include "nn/pooling.hpp"
#include "nn/serialize.hpp"
#include "nn/softmax.hpp"
#include "serve/serve_loop.hpp"
#include "util/rng.hpp"

namespace origin::serve {
namespace {

// --- Delta codec -----------------------------------------------------

nn::Sequential small_model(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Conv1D>(3, 4, 3, 1, rng)
      .emplace<nn::ReLU>()
      .emplace<nn::Flatten>()
      .emplace<nn::Dense>(4 * (12 - 3 + 1), 5, rng)
      .emplace<nn::ReLU>()
      .emplace<nn::Dense>(5, 4, rng)
      .emplace<nn::Softmax>();
  return m;
}

// Perturbs only the trailing Dense (the fine-tuning shape: head adapts,
// backbone stays frozen).
nn::Sequential perturb_head(const nn::Sequential& base, float eps) {
  nn::Sequential tuned = base;
  const auto params = tuned.params();
  auto* head = params[params.size() - 2];  // last Dense weight
  auto* bias = params[params.size() - 1];
  for (std::size_t i = 0; i < head->size(); ++i) {
    head->data()[i] += eps * static_cast<float>((i % 5) - 2);
  }
  for (std::size_t i = 0; i < bias->size(); ++i) {
    bias->data()[i] -= eps * static_cast<float>(i % 3);
  }
  return tuned;
}

void expect_same_params(nn::Sequential& a, nn::Sequential& b) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t t = 0; t < pa.size(); ++t) {
    SCOPED_TRACE(t);
    ASSERT_EQ(pa[t]->size(), pb[t]->size());
    for (std::size_t i = 0; i < pa[t]->size(); ++i) {
      ASSERT_EQ(pa[t]->data()[i], pb[t]->data()[i]) << "element " << i;
    }
  }
}

TEST(DeltaCodec, EncodeIsSparseAtTensorGranularity) {
  nn::Sequential base = small_model(1);
  nn::Sequential tuned = perturb_head(base, 1e-3f);
  const nn::ModelDelta delta = nn::delta_encode(base, tuned);
  // Only the head Dense's weight + bias were touched.
  EXPECT_EQ(delta.entries.size(), 2u);
  EXPECT_EQ(delta.base_param_tensors, base.params().size());
  EXPECT_EQ(delta.base_fingerprint, nn::params_fingerprint(base));
}

TEST(DeltaCodec, ApplyEncodeIsAProjection) {
  // The serving-tier invariant: realizing a delta (base + dequant) and
  // re-encoding against the same base reproduces the identical delta and
  // identical float parameters — what a snapshot stores is exactly what
  // the live model serves.
  nn::Sequential base = small_model(2);
  nn::Sequential tuned = perturb_head(base, 3e-4f);
  const nn::ModelDelta delta = nn::delta_encode(base, tuned);

  nn::Sequential realized = base;
  nn::delta_apply(base, delta, realized);
  const nn::ModelDelta again = nn::delta_encode(base, realized);
  ASSERT_EQ(again.entries.size(), delta.entries.size());
  for (std::size_t e = 0; e < delta.entries.size(); ++e) {
    EXPECT_EQ(again.entries[e].param_index, delta.entries[e].param_index);
    EXPECT_EQ(again.entries[e].scale, delta.entries[e].scale);
    EXPECT_EQ(again.entries[e].q, delta.entries[e].q);
  }
  nn::Sequential realized2 = base;
  nn::delta_apply(base, again, realized2);
  expect_same_params(realized, realized2);
}

TEST(DeltaCodec, IdentityDeltaRestoresBase) {
  nn::Sequential base = small_model(3);
  nn::Sequential dirty = perturb_head(base, 1e-2f);
  // A default-constructed delta is the identity: it restores plain base
  // into any same-architecture model without a fingerprint check.
  nn::delta_apply(base, nn::ModelDelta{}, dirty);
  expect_same_params(dirty, base);
}

TEST(DeltaCodec, MismatchedBaseRejected) {
  nn::Sequential base = small_model(4);
  nn::Sequential other = small_model(5);  // same layout, different weights
  nn::Sequential tuned = perturb_head(base, 1e-3f);
  const nn::ModelDelta delta = nn::delta_encode(base, tuned);
  nn::Sequential out = base;
  EXPECT_THROW(nn::delta_apply(other, delta, out), std::runtime_error);
  EXPECT_NO_THROW(nn::delta_apply(base, delta, out));
}

TEST(DeltaCodec, StringRoundTripAndCorruptionRejected) {
  nn::Sequential base = small_model(6);
  nn::Sequential tuned = perturb_head(base, 2e-3f);
  const nn::ModelDelta delta = nn::delta_encode(base, tuned);
  const std::string blob = nn::delta_to_string(delta);

  const nn::ModelDelta loaded = nn::delta_from_string(blob);
  nn::Sequential a = base, b = base;
  nn::delta_apply(base, delta, a);
  nn::delta_apply(base, loaded, b);
  expect_same_params(a, b);

  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_THROW(nn::delta_from_string(bad), std::runtime_error);
  EXPECT_THROW(nn::delta_from_string(blob.substr(0, blob.size() - 3)),
               std::runtime_error);
  EXPECT_THROW(nn::delta_from_string(blob + "zz"), std::runtime_error);

  // The identity delta round-trips too (snapshot v3 stores one per
  // never-tuned session).
  const nn::ModelDelta identity =
      nn::delta_from_string(nn::delta_to_string(nn::ModelDelta{}));
  EXPECT_TRUE(identity.empty());
  EXPECT_EQ(identity.base_param_tensors, 0u);
}

TEST(DeltaCodec, FileRoundTrip) {
  nn::Sequential base = small_model(7);
  nn::Sequential tuned = perturb_head(base, 1e-3f);
  const nn::ModelDelta delta = nn::delta_encode(base, tuned);
  const std::string path = testing::TempDir() + "/user_delta.bin";
  nn::save_delta_atomic(delta, path);
  const nn::ModelDelta loaded = nn::load_delta(path);
  nn::Sequential a = base, b = base;
  nn::delta_apply(base, delta, a);
  nn::delta_apply(base, loaded, b);
  expect_same_params(a, b);
  std::remove(path.c_str());
  EXPECT_THROW(nn::load_delta(path), std::runtime_error);
}

TEST(TailTrainableMask, SelectsTrailingParameterizedLayers) {
  nn::Sequential m = small_model(8);
  const auto params = m.params();
  // tail=1: only the last Dense (weight + bias) adapts.
  const auto mask1 = tail_trainable_mask(m, 1);
  ASSERT_EQ(mask1.size(), params.size());
  for (std::size_t i = 0; i < mask1.size(); ++i) {
    EXPECT_EQ(mask1[i] != 0, i >= mask1.size() - 2) << "param " << i;
  }
  // A huge tail marks everything.
  const auto mask_all = tail_trainable_mask(m, 100);
  for (std::size_t i = 0; i < mask_all.size(); ++i) {
    EXPECT_NE(mask_all[i], 0u);
  }
}

// --- Shared trained fixture for calibration + serving tests ----------

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class PersonalizeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 60;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static ServeConfig tuned_config() {
    ServeConfig cfg;
    cfg.users = 6;
    cfg.arrival_rate_hz = 2.0;
    cfg.shards = 3;
    cfg.policy = sim::PolicyKind::Origin;
    cfg.personalize.enabled = true;
    cfg.personalize.cadence_slots = 20;
    cfg.personalize.min_samples = 4;
    cfg.personalize.batch_size = 4;
    // Aggressive rate so adaptation visibly changes served outputs within
    // the short 60-slot test streams.
    cfg.personalize.learning_rate = 5e-2;
    return cfg;
  }

  static void expect_same_completed(const std::vector<CompletedSession>& a,
                                    const std::vector<CompletedSession>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].completed_tick, b[i].completed_tick);
      EXPECT_EQ(a[i].accuracy, b[i].accuracy);
      EXPECT_EQ(a[i].outputs_fnv1a, b[i].outputs_fnv1a);
      EXPECT_EQ(a[i].outputs, b[i].outputs);
      EXPECT_EQ(a[i].fine_tunes, b[i].fine_tunes);
      EXPECT_EQ(a[i].fine_tune_steps, b[i].fine_tune_steps);
      EXPECT_EQ(a[i].delta_bytes, b[i].delta_bytes);
      EXPECT_EQ(a[i].personalize_j, b[i].personalize_j);
    }
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* PersonalizeTest::experiment_ = nullptr;

// --- Parallel pipeline calibration -----------------------------------

TEST_F(PersonalizeTest, PerClassAccuracyBatchMatchesOracle) {
  core::TrainedSystem system = experiment_->system();
  const int num_classes = system.spec.num_classes();
  for (std::size_t s = 0; s < data::kNumSensors; ++s) {
    SCOPED_TRACE(s);
    const auto oracle = core::per_class_accuracy(
        system.sensors[s].bl2, system.test_sets[s], num_classes);
    const auto batch = core::per_class_accuracy_batch(
        system.sensors[s].bl2, system.test_sets[s], num_classes);
    ASSERT_EQ(batch.size(), oracle.size());
    for (std::size_t c = 0; c < oracle.size(); ++c) {
      EXPECT_EQ(batch[c], oracle[c]) << "class " << c;
    }
  }
}

TEST_F(PersonalizeTest, CalibrateSensorRowsMatchCalibrateOracle) {
  core::TrainedSystem system = experiment_->system();
  const int num_classes = system.spec.num_classes();
  const auto oracle = core::ConfidenceMatrix::calibrate(
      {&system.sensors[0].bl2, &system.sensors[1].bl2, &system.sensors[2].bl2},
      {&system.test_sets[0], &system.test_sets[1], &system.test_sets[2]},
      num_classes);
  std::array<std::vector<double>, data::kNumSensors> rows;
  for (std::size_t s = 0; s < data::kNumSensors; ++s) {
    rows[s] = core::ConfidenceMatrix::calibrate_sensor(
        system.sensors[s].bl2, system.test_sets[s], num_classes);
  }
  const auto assembled = core::ConfidenceMatrix::from_rows(rows, num_classes);
  for (int s = 0; s < data::kNumSensors; ++s) {
    for (int c = 0; c < num_classes; ++c) {
      EXPECT_EQ(
          assembled.weight(static_cast<data::SensorLocation>(s), c),
          oracle.weight(static_cast<data::SensorLocation>(s), c))
          << "sensor " << s << " class " << c;
    }
  }
}

TEST_F(PersonalizeTest, CalibrateSystemBitIdenticalAcrossThreadCounts) {
  core::PipelineConfig cfg = micro_pipeline();
  auto calibrated_at = [&](int threads) {
    core::TrainedSystem system = experiment_->system();
    cfg.train_threads = threads;
    core::calibrate_system(system, cfg);
    return system;
  };
  const core::TrainedSystem serial = calibrated_at(1);
  const int num_classes = serial.spec.num_classes();
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    const core::TrainedSystem parallel = calibrated_at(threads);
    for (std::size_t s = 0; s < data::kNumSensors; ++s) {
      EXPECT_EQ(parallel.calib_accuracy[s], serial.calib_accuracy[s]);
      EXPECT_EQ(parallel.calib_accuracy_relaxed[s],
                serial.calib_accuracy_relaxed[s]);
    }
    for (int c = 0; c < num_classes; ++c) {
      for (int r = 0; r < data::kNumSensors; ++r) {
        EXPECT_EQ(parallel.ranks.sensor_at(c, r), serial.ranks.sensor_at(c, r));
        EXPECT_EQ(parallel.ranks_relaxed.sensor_at(c, r),
                  serial.ranks_relaxed.sensor_at(c, r));
      }
      for (int s = 0; s < data::kNumSensors; ++s) {
        const auto loc = static_cast<data::SensorLocation>(s);
        EXPECT_EQ(parallel.confidence.weight(loc, c),
                  serial.confidence.weight(loc, c));
        EXPECT_EQ(parallel.confidence_relaxed.weight(loc, c),
                  serial.confidence_relaxed.weight(loc, c));
      }
    }
  }
}

// --- Served fine-tuning ----------------------------------------------

TEST_F(PersonalizeTest, FineTuneRunsRespectsBudgetAndShrinksStorage) {
  ServeConfig cfg = tuned_config();
  ServeLoop loop(*experiment_, cfg);
  loop.drain(/*chunk=*/5);
  const auto log = loop.completed_sessions();
  ASSERT_EQ(log.size(), cfg.users);

  const std::uint64_t full_bytes =
      3 * nn::model_to_string(experiment_->system().bl2_copy()[0]).size();
  std::uint64_t total_tunes = 0;
  for (const auto& c : log) {
    SCOPED_TRACE(c.id);
    total_tunes += c.fine_tunes;
    EXPECT_LE(c.fine_tune_steps,
              static_cast<std::uint64_t>(cfg.personalize.step_budget));
    if (c.fine_tunes > 0) {
      EXPECT_GT(c.fine_tune_steps, 0u);
      EXPECT_GT(c.delta_bytes, 0u);
      EXPECT_GT(c.personalize_j, 0.0);
      // The per-user store is at least 10x smaller than three full
      // model files.
      EXPECT_LE(10 * c.delta_bytes, full_bytes);
    }
  }
  EXPECT_GT(total_tunes, 0u);

  // The deterministic counters account for every fine-tune in the log.
  const auto metrics = loop.metrics();
  const auto* tunes_def = metrics.find("serve.fine_tunes");
  ASSERT_NE(tunes_def, nullptr);
  EXPECT_EQ(metrics.counters[tunes_def->slot], total_tunes);

  // Fine-tuning must actually change served outputs for someone (the
  // point of the subsystem) while frozen serving stays frozen.
  ServeConfig frozen_cfg = tuned_config();
  frozen_cfg.personalize.enabled = false;
  ServeLoop frozen(*experiment_, frozen_cfg);
  frozen.drain(/*chunk=*/5);
  const auto frozen_log = frozen.completed_sessions();
  ASSERT_EQ(frozen_log.size(), log.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < log.size(); ++i) {
    any_differs = any_differs ||
                  log[i].outputs_fnv1a != frozen_log[i].outputs_fnv1a;
  }
  EXPECT_TRUE(any_differs);
}

TEST_F(PersonalizeTest, FineTuneBitIdenticalAcrossThreadCounts) {
  ServeConfig cfg = tuned_config();
  ServeLoop reference(*experiment_, cfg);
  reference.drain(/*chunk=*/5);
  const auto ref_log = reference.completed_sessions();
  const auto ref_metrics = reference.metrics();

  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    ServeConfig t_cfg = cfg;
    t_cfg.threads = threads;
    ServeLoop loop(*experiment_, t_cfg);
    loop.drain(/*chunk=*/5);
    expect_same_completed(loop.completed_sessions(), ref_log);
    EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(loop.metrics(),
                                                          ref_metrics));
  }
}

TEST_F(PersonalizeTest, FineTuneBitIdenticalWithCrossSessionBatching) {
  // Personalized sessions carry non-identity weight deltas, so the
  // batched gather must split them out of the shared base panel (or
  // serve them one-by-one under their own weights). Either way the
  // served bits — outputs, fine-tune counts, delta bytes, joules — must
  // match the sequential path exactly.
  ServeConfig cfg = tuned_config();
  cfg.serve_batch = 0;
  ServeLoop sequential(*experiment_, cfg);
  sequential.drain(/*chunk=*/5);
  const auto ref_log = sequential.completed_sessions();
  const auto ref_metrics = sequential.metrics();
  std::uint64_t total_tunes = 0;
  for (const auto& c : ref_log) total_tunes += c.fine_tunes;
  ASSERT_GT(total_tunes, 0u);  // the run must actually fine-tune

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    ServeConfig b_cfg = cfg;
    b_cfg.serve_batch = 1;
    b_cfg.threads = threads;
    ServeLoop loop(*experiment_, b_cfg);
    loop.drain(/*chunk=*/5);
    EXPECT_GT(loop.status().batch_panels, 0u);
    expect_same_completed(loop.completed_sessions(), ref_log);
    EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(loop.metrics(),
                                                          ref_metrics));
  }
}

TEST_F(PersonalizeTest, FineTuneSplitRunBitIdenticalToUninterrupted) {
  ServeConfig cfg = tuned_config();
  ServeLoop uninterrupted(*experiment_, cfg);
  uninterrupted.drain(/*chunk=*/5);
  const auto full_log = uninterrupted.completed_sessions();
  const auto full_metrics = uninterrupted.metrics();

  // Split points both before and after the first fine-tune cadence fires
  // (20 slots), so the snapshot carries sample buffers alone and buffers
  // plus realized deltas respectively.
  for (std::uint64_t split : {13u, 30u}) {
    SCOPED_TRACE(split);
    const std::string path =
        testing::TempDir() + "/personalize_split_" + std::to_string(split) +
        ".snap";
    ServeLoop first(*experiment_, cfg);
    first.tick(split);
    ASSERT_FALSE(first.done());
    first.save(path);

    ServeConfig second_cfg = cfg;
    second_cfg.threads = 2;  // restore under a different thread count
    ServeLoop second(*experiment_, second_cfg);
    second.restore(path);
    second.drain(/*chunk=*/5);

    expect_same_completed(second.completed_sessions(), full_log);
    EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(second.metrics(),
                                                          full_metrics));
    std::remove(path.c_str());
  }
}

TEST_F(PersonalizeTest, SnapshotFingerprintCoversPersonalizeConfig) {
  ServeConfig cfg = tuned_config();
  ServeLoop first(*experiment_, cfg);
  first.tick(4);
  const std::string path = testing::TempDir() + "/personalize_fp.snap";
  first.save(path);

  ServeConfig off = cfg;
  off.personalize.enabled = false;
  ServeLoop disabled(*experiment_, off);
  EXPECT_THROW(disabled.restore(path), std::runtime_error);

  ServeConfig other = cfg;
  other.personalize.step_budget += 1;
  ServeLoop budget(*experiment_, other);
  EXPECT_THROW(budget.restore(path), std::runtime_error);

  ServeLoop same(*experiment_, cfg);
  EXPECT_NO_THROW(same.restore(path));
  std::remove(path.c_str());
}

TEST_F(PersonalizeTest, PersonalizeConstraintsValidated) {
  ServeConfig cfg = tuned_config();
  cfg.bits = 8;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);

  cfg = tuned_config();
  cfg.batch_slots = 4;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);

  cfg = tuned_config();
  cfg.personalize.step_budget = 0;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);
  cfg = tuned_config();
  cfg.personalize.cadence_slots = 0;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);
  cfg = tuned_config();
  cfg.personalize.min_samples = 0;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);
  cfg = tuned_config();
  cfg.personalize.max_samples = cfg.personalize.min_samples - 1;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);
  cfg = tuned_config();
  cfg.personalize.tune_tail_layers = 0;
  EXPECT_THROW(ServeLoop(*experiment_, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace origin::serve
