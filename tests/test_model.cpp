#include "nn/model.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

Sequential small_cnn(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(2, 4, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Flatten>()
      .emplace<Dense>(4 * 5, 3, rng);
  return m;
}

TEST(Sequential, AddRejectsNull) {
  Sequential m;
  EXPECT_THROW(m.add(nullptr), std::invalid_argument);
}

TEST(Sequential, ForwardShape) {
  auto m = small_cnn(1);
  const Tensor y = m.forward(Tensor({2, 12}), false);
  EXPECT_EQ(y.shape(), std::vector<int>{3});
}

TEST(Sequential, ShapeTrace) {
  auto m = small_cnn(2);
  const auto trace = m.shape_trace({2, 12});
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], (std::vector<int>{2, 12}));
  EXPECT_EQ(trace[1], (std::vector<int>{4, 10}));
  EXPECT_EQ(trace[2], (std::vector<int>{4, 10}));
  EXPECT_EQ(trace[3], (std::vector<int>{4, 5}));
  EXPECT_EQ(trace[4], (std::vector<int>{20}));
  EXPECT_EQ(trace[5], (std::vector<int>{3}));
}

TEST(Sequential, ParamCount) {
  auto m = small_cnn(3);
  // conv: 4*2*3 + 4 = 28; dense: 3*20 + 3 = 63
  EXPECT_EQ(m.param_count(), 91u);
}

TEST(Sequential, TotalMacs) {
  auto m = small_cnn(4);
  // conv: 4 out-ch * 10 positions * 2 in-ch * 3 k = 240; dense: 60
  EXPECT_EQ(m.total_macs({2, 12}), 300u);
}

TEST(Sequential, PredictProbaSumsToOne) {
  auto m = small_cnn(5);
  util::Rng rng(6);
  const auto p = m.predict_proba(Tensor::randn({2, 12}, rng, 1.0f));
  double sum = 0.0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Sequential, PredictIsArgmaxOfProba) {
  auto m = small_cnn(7);
  util::Rng rng(8);
  const Tensor x = Tensor::randn({2, 12}, rng, 1.0f);
  const auto p = m.predict_proba(x);
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  EXPECT_EQ(m.predict(x), static_cast<int>(best));
}

TEST(Sequential, CopyIsDeep) {
  auto m = small_cnn(9);
  Sequential copy = m;
  util::Rng rng(10);
  const Tensor x = Tensor::randn({2, 12}, rng, 1.0f);
  const auto before = copy.predict_proba(x);
  // Perturb the original's weights; the copy must be unaffected.
  for (Tensor* p : m.params()) p->scale(0.0f);
  const auto after = copy.predict_proba(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(Sequential, ZeroGradsClears) {
  auto m = small_cnn(11);
  util::Rng rng(12);
  const Tensor x = Tensor::randn({2, 12}, rng, 1.0f);
  const Tensor y = m.forward(x, true);
  Tensor g(y.shape());
  g.fill(1.0f);
  m.backward(g);
  bool any_nonzero = false;
  for (Tensor* gr : m.grads()) {
    if (gr->abs_sum() > 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  m.zero_grads();
  for (Tensor* gr : m.grads()) {
    EXPECT_FLOAT_EQ(gr->abs_sum(), 0.0f);
  }
}

TEST(Sequential, SummaryMentionsLayers) {
  auto m = small_cnn(13);
  const std::string s = m.summary({2, 12});
  EXPECT_NE(s.find("conv1d"), std::string::npos);
  EXPECT_NE(s.find("dense"), std::string::npos);
  EXPECT_NE(s.find("maxpool1d"), std::string::npos);
}

TEST(Sequential, DeterministicForward) {
  auto m = small_cnn(14);
  util::Rng rng(15);
  const Tensor x = Tensor::randn({2, 12}, rng, 1.0f);
  const auto a = m.predict_proba(x);
  const auto b = m.predict_proba(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace origin::nn
