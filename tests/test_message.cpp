#include "net/message.hpp"

#include <gtest/gtest.h>

#include "net/radio.hpp"
#include "util/stats.hpp"

namespace origin::net {
namespace {

TEST(Classification, DefaultInvalid) {
  Classification c;
  EXPECT_FALSE(c.valid());
}

TEST(Classification, MakeFromProbs) {
  const Classification c = make_classification({0.1f, 0.7f, 0.2f});
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.predicted_class, 1);
  EXPECT_NEAR(c.confidence,
              util::probability_vector_variance({0.1f, 0.7f, 0.2f}), 1e-12);
  ASSERT_EQ(c.probs.size(), 3u);
}

TEST(Classification, SharperIsMoreConfident) {
  const Classification sharp = make_classification({0.94f, 0.02f, 0.02f, 0.02f});
  const Classification soft = make_classification({0.4f, 0.3f, 0.2f, 0.1f});
  EXPECT_GT(sharp.confidence, soft.confidence);
}

TEST(Message, PayloadsAreFewBytes) {
  Message result;
  result.type = MessageType::ClassificationResult;
  Message signal;
  signal.type = MessageType::ActivationSignal;
  EXPECT_LE(result.payload_bytes(), 8u);
  EXPECT_LE(signal.payload_bytes(), 8u);
  EXPECT_GT(result.payload_bytes(), 0u);
}

TEST(Radio, EnergyIncludesOverheadAndPayload) {
  RadioModel radio;
  Message m;
  m.type = MessageType::ClassificationResult;
  const double e = radio.tx_energy_j(m);
  EXPECT_GT(e, radio.tx_overhead_j);
  EXPECT_NEAR(e, radio.tx_overhead_j +
                     radio.energy_per_byte_j * static_cast<double>(m.payload_bytes()),
              1e-18);
}

TEST(Radio, LatencyPositiveAndSmall) {
  RadioModel radio;
  Message m;
  const double t = radio.tx_latency_s(m);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.1);  // well within a slot
}

TEST(Radio, CostNegligibleVsInference) {
  // The paper assumes communication cost is negligible; verify the model
  // keeps radio energy well below a typical inference (~5 uJ).
  RadioModel radio;
  Message m;
  EXPECT_LT(radio.tx_energy_j(m), 0.5 * 5e-6);
}

}  // namespace
}  // namespace origin::net
