// Bit-identity and golden-checksum pins for the data-path kernels.
//
// The fast synthesis path (SignalModel::synthesize_window and friends)
// must match the preserved oracle (synthesize_window_reference) bit for
// bit AND consume the RNG in the same order; the FNV-1a checksums below
// additionally pin the absolute output so a future edit to *both*
// implementations can't silently shift every downstream accuracy number.
// If a pinned value changes on purpose, regenerate the constants and say
// so loudly in the commit — every experiment table downstream moves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "data/dataset.hpp"
#include "data/signal_model.hpp"
#include "util/det_math.hpp"
#include "util/rng.hpp"

namespace origin::data {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  const auto* b = reinterpret_cast<const unsigned char*>(&v);
  for (int i = 0; i < 8; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(const nn::Tensor& t) {
  std::uint64_t h = kFnvOffset;
  const auto* bytes = reinterpret_cast<const unsigned char*>(t.data());
  const std::size_t n = sizeof(float) * t.vec().size();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

bool same_bits(const nn::Tensor& a, const nn::Tensor& b) {
  return a.vec().size() == b.vec().size() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * a.vec().size()) == 0;
}

TEST(DetMath, TracksLibmSinAcrossSynthesisRange) {
  // Synthesis arguments stay within a few thousand radians (omega * t for
  // minutes-long streams); sweep well past that plus the reduction seams.
  double max_err = 0.0;
  for (int i = 0; i <= 400000; ++i) {
    const double x = -2000.0 + static_cast<double>(i) * 0.01;
    max_err = std::max(max_err, std::abs(util::det_sin(x) - std::sin(x)));
  }
  EXPECT_LT(max_err, 2e-11);
  EXPECT_EQ(util::det_sin(0.0), 0.0);
  EXPECT_EQ(util::det_sin(-1.25), -util::det_sin(1.25));
}

class DataGoldenTest : public ::testing::Test {
 protected:
  DataGoldenTest()
      : spec_(dataset_spec(DatasetKind::MHealthLike)),
        model_(spec_, reference_user()) {}

  DatasetSpec spec_;
  SignalModel model_;
};

TEST_F(DataGoldenTest, FastPathBitIdenticalToReference) {
  // Full (activity, location) grid under many styles — including drawn
  // ambiguous ones — from identical RNG states; both the samples and the
  // post-call RNG state must agree.
  for (int a = 0; a < kNumActivityKinds; ++a) {
    for (int s = 0; s < kNumSensors; ++s) {
      util::Rng style_rng(77);
      for (int trial = 0; trial < 40; ++trial) {
        const auto style = draw_shared_style(
            spec_, static_cast<Activity>(a), style_rng, 0.5);
        const std::uint64_t seed =
            1000 + static_cast<std::uint64_t>(a * 1000 + s * 100 + trial);
        util::Rng rng_ref(seed);
        util::Rng rng_fast(seed);
        const double t0 = 0.25 * trial;
        const auto want = model_.synthesize_window_reference(
            static_cast<Activity>(a), static_cast<SensorLocation>(s), t0,
            rng_ref, style);
        nn::Tensor got;
        model_.synthesize_window(got, static_cast<Activity>(a),
                                 static_cast<SensorLocation>(s), t0, rng_fast,
                                 style);
        ASSERT_TRUE(same_bits(got, want))
            << "activity " << a << " sensor " << s << " trial " << trial;
        ASSERT_EQ(rng_fast.next_u64(), rng_ref.next_u64())
            << "RNG draw order diverged: activity " << a << " sensor " << s
            << " trial " << trial;
      }
    }
  }
}

TEST_F(DataGoldenTest, DrawnStylePathMatchesReference) {
  // Omitted style → both paths draw it themselves, from the same stream.
  for (int a = 0; a < kNumActivityKinds; ++a) {
    util::Rng rng_ref(42 + static_cast<std::uint64_t>(a));
    util::Rng rng_fast(42 + static_cast<std::uint64_t>(a));
    for (int trial = 0; trial < 20; ++trial) {
      const auto want = model_.synthesize_window_reference(
          static_cast<Activity>(a), SensorLocation::RightWrist, 1.5, rng_ref);
      const auto got = model_.window(static_cast<Activity>(a),
                                     SensorLocation::RightWrist, 1.5, rng_fast);
      ASSERT_TRUE(same_bits(got, want)) << "activity " << a << " trial "
                                        << trial;
    }
    EXPECT_EQ(rng_fast.next_u64(), rng_ref.next_u64());
  }
}

TEST_F(DataGoldenTest, SlotSynthesisMatchesPerWindowLoop) {
  util::Rng style_rng(5);
  const auto style = draw_shared_style(spec_, Activity::Jogging, style_rng,
                                       1.0);
  util::Rng rng_loop(314);
  util::Rng rng_slot(314);
  std::array<nn::Tensor, kNumSensors> want;
  for (int s = 0; s < kNumSensors; ++s) {
    model_.synthesize_window(want[static_cast<std::size_t>(s)],
                             Activity::Jogging,
                             static_cast<SensorLocation>(s), 2.0, rng_loop,
                             style);
  }
  std::array<nn::Tensor, kNumSensors> got;
  model_.synthesize_slot(got, Activity::Jogging, 2.0, rng_slot, style);
  for (int s = 0; s < kNumSensors; ++s) {
    EXPECT_TRUE(same_bits(got[static_cast<std::size_t>(s)],
                          want[static_cast<std::size_t>(s)]))
        << "sensor " << s;
  }
  EXPECT_EQ(rng_slot.next_u64(), rng_loop.next_u64());
}

// Golden values generated from the reference user on the MHealthLike spec
// (det_sin synthesis, -ffp-contract=off data path). Window w[a][s] is the
// s-th of three consecutive window() calls on Rng(9000 + a) at t0 = 3.25;
// the RNG pin is next_u64() right after the third call, which also locks
// the number of draws each window consumes.
constexpr std::uint64_t kGoldenWindows[kNumActivityKinds][kNumSensors] = {
    {0x0b9fa34bc949e8e6ULL, 0x4de5d81dea2c2fd9ULL, 0xc908a612ed21f2f4ULL},
    {0xaca4a063bdb9d332ULL, 0xb3c2684890afc5a4ULL, 0xbc84392afd1a6196ULL},
    {0xe57a0692c735be02ULL, 0x93e5a8361415ea47ULL, 0x6bedd82b978e7f5fULL},
    {0x3cd2ecdd315e4240ULL, 0x7943ecaeba54fbdbULL, 0x841c94432b45092bULL},
    {0xdf002291094ae34bULL, 0x55ee5ca49434183aULL, 0xe5a5ba459344a4f7ULL},
    {0x582db716fe4f4cadULL, 0x7150e84c722e3d63ULL, 0x9e3b8f08056d9047ULL},
};
constexpr std::uint64_t kGoldenRngAfter[kNumActivityKinds] = {
    0x4273cf36eb7e6234ULL, 0x88b05ec484970367ULL, 0xf418712f4953c7abULL,
    0xcc6dd44fcb76910fULL, 0x71ade460702e30dbULL, 0x523b77cd1bb84156ULL,
};

TEST_F(DataGoldenTest, WindowChecksumsAndRngOrderPinned) {
  for (int a = 0; a < kNumActivityKinds; ++a) {
    util::Rng rng(9000 + static_cast<std::uint64_t>(a));
    for (int s = 0; s < kNumSensors; ++s) {
      const auto w = model_.window(static_cast<Activity>(a),
                                   static_cast<SensorLocation>(s), 3.25, rng);
      EXPECT_EQ(fnv1a(w), kGoldenWindows[a][s])
          << "activity " << a << " sensor " << s;
    }
    EXPECT_EQ(rng.next_u64(), kGoldenRngAfter[a]) << "activity " << a;
  }
}

TEST_F(DataGoldenTest, StreamChecksumPinned) {
  // One checksum over a whole stream — labels, ambiguity flags and every
  // window — covers make_stream's slot loop end to end (anchor
  // interpolation, ambiguous episodes, per-sensor synthesis order).
  const auto stream = make_stream(spec_, 25, reference_user(), 424242);
  std::uint64_t h = kFnvOffset;
  for (const auto& slot : stream.slots) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(slot.label));
    h = fnv1a_mix(h, slot.ambiguous ? 1u : 0u);
    for (const auto& w : slot.windows) h = fnv1a_mix(h, fnv1a(w));
  }
  EXPECT_EQ(h, 0x765b89f29aebdae6ULL);
}

}  // namespace
}  // namespace origin::data
