#include "core/confidence.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "util/rng.hpp"

namespace origin::core {
namespace {

using data::SensorLocation;

TEST(ConfidenceMatrix, ConstructorValidation) {
  EXPECT_THROW(ConfidenceMatrix(0), std::invalid_argument);
  EXPECT_THROW(ConfidenceMatrix(3, -0.1), std::invalid_argument);
}

TEST(ConfidenceMatrix, UniformInitial) {
  ConfidenceMatrix m(4, 0.07);
  for (int s = 0; s < data::kNumSensors; ++s) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(m.weight(static_cast<SensorLocation>(s), c), 0.07);
    }
  }
}

TEST(ConfidenceMatrix, EmaUpdateMovesTowardObservation) {
  ConfidenceMatrix m(2, 0.1);
  m.set_alpha(0.5);
  m.update(SensorLocation::Chest, 0, 0.3);
  EXPECT_DOUBLE_EQ(m.weight(SensorLocation::Chest, 0), 0.2);
  m.update(SensorLocation::Chest, 0, 0.3);
  EXPECT_DOUBLE_EQ(m.weight(SensorLocation::Chest, 0), 0.25);
  // Other cells untouched.
  EXPECT_DOUBLE_EQ(m.weight(SensorLocation::Chest, 1), 0.1);
  EXPECT_DOUBLE_EQ(m.weight(SensorLocation::LeftAnkle, 0), 0.1);
}

TEST(ConfidenceMatrix, ConvergesToStationaryObservation) {
  ConfidenceMatrix m(2, 0.0);
  m.set_alpha(0.2);
  for (int i = 0; i < 200; ++i) m.update(SensorLocation::RightWrist, 1, 0.12);
  EXPECT_NEAR(m.weight(SensorLocation::RightWrist, 1), 0.12, 1e-6);
}

TEST(ConfidenceMatrix, UpdateValidation) {
  ConfidenceMatrix m(2);
  EXPECT_THROW(m.update(SensorLocation::Chest, 2, 0.1), std::out_of_range);
  EXPECT_THROW(m.update(SensorLocation::Chest, 0, -0.1), std::invalid_argument);
  EXPECT_THROW(m.set_alpha(0.0), std::invalid_argument);
  EXPECT_THROW(m.set_alpha(1.5), std::invalid_argument);
}

TEST(ConfidenceMatrix, SetWeightAndDistance) {
  ConfidenceMatrix a(2, 0.1), b(2, 0.1);
  EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
  b.set_weight(SensorLocation::Chest, 0, 0.4);
  // One cell off by 0.3 out of 6 cells.
  EXPECT_NEAR(a.distance(b), 0.3 / 6.0, 1e-12);
  ConfidenceMatrix c(3);
  EXPECT_THROW(a.distance(c), std::invalid_argument);
}

TEST(ConfidenceMatrix, CalibrateAveragesPerPredictedClass) {
  // Build three trivial "models" that output fixed logits regardless of
  // input: each predicts a known class with a known softmax variance.
  auto fixed_model = [](float strong) {
    util::Rng rng(1);
    nn::Sequential m;
    m.emplace<nn::Dense>(2, 3);
    auto* d = dynamic_cast<nn::Dense*>(&m.layer(0));
    d->weight().zero();
    d->bias()[0] = strong;  // always predicts class 0
    return m;
  };
  nn::Sequential m0 = fixed_model(10.0f);  // near one-hot: high variance
  nn::Sequential m1 = fixed_model(0.5f);   // soft: low variance
  nn::Sequential m2 = fixed_model(2.0f);

  nn::Samples calib;
  for (int i = 0; i < 4; ++i) calib.push_back({nn::Tensor({2}), 0});

  const auto matrix = ConfidenceMatrix::calibrate(
      {&m0, &m1, &m2}, {&calib, &calib, &calib}, 3);
  // Sharper model earns a higher class-0 weight.
  EXPECT_GT(matrix.weight(SensorLocation::Chest, 0),
            matrix.weight(SensorLocation::LeftAnkle, 0));
  // Never-predicted classes fall back to the sensor's global mean: equal
  // to the class-0 value here since all predictions were class 0.
  EXPECT_DOUBLE_EQ(matrix.weight(SensorLocation::Chest, 1),
                   matrix.weight(SensorLocation::Chest, 0));
}

TEST(ConfidenceMatrix, CalibrateValidatesInputs) {
  nn::Samples calib;
  EXPECT_THROW(
      ConfidenceMatrix::calibrate({nullptr, nullptr, nullptr},
                                  {&calib, &calib, &calib}, 3),
      std::invalid_argument);
}

// A model whose prediction varies with the input, so calibration sees a
// mix of predicted classes.
nn::Sequential varied_model(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Dense>(4, 3, rng);
  return m;
}

nn::Samples varied_samples(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Samples samples;
  for (int i = 0; i < n; ++i) {
    samples.push_back({nn::Tensor::randn({4}, rng, 1.0f), i % 3});
  }
  return samples;
}

TEST(ConfidenceMatrix, CalibrateSensorMatchesCalibrateBitwise) {
  // The batched per-sensor row (the unit of the parallel pipeline
  // calibration) against the per-sample calibrate() oracle.
  nn::Sequential m0 = varied_model(11), m1 = varied_model(12),
                 m2 = varied_model(13);
  const nn::Samples s0 = varied_samples(40, 21), s1 = varied_samples(37, 22),
                    s2 = varied_samples(5, 23);
  const auto oracle =
      ConfidenceMatrix::calibrate({&m0, &m1, &m2}, {&s0, &s1, &s2}, 3);
  std::array<std::vector<double>, data::kNumSensors> rows = {
      ConfidenceMatrix::calibrate_sensor(m0, s0, 3),
      ConfidenceMatrix::calibrate_sensor(m1, s1, 3),
      ConfidenceMatrix::calibrate_sensor(m2, s2, 3)};
  const auto assembled = ConfidenceMatrix::from_rows(rows, 3);
  for (int s = 0; s < data::kNumSensors; ++s) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(assembled.weight(static_cast<SensorLocation>(s), c),
                oracle.weight(static_cast<SensorLocation>(s), c))
          << "sensor " << s << " class " << c;
    }
  }
}

TEST(ConfidenceMatrix, CalibrateSensorSingleWindowClass) {
  // One calibration window: its predicted class's cell and every
  // never-predicted class's global-mean fallback all equal that single
  // window's softmax variance.
  nn::Sequential m = varied_model(31);
  const nn::Samples one = varied_samples(1, 41);
  const auto row = ConfidenceMatrix::calibrate_sensor(m, one, 3);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_GT(row[0], 0.0);
  EXPECT_EQ(row[0], row[1]);
  EXPECT_EQ(row[1], row[2]);
}

TEST(ConfidenceMatrix, FromRowsValidatesRowSizes) {
  std::array<std::vector<double>, data::kNumSensors> rows = {
      std::vector<double>{0.1, 0.2}, std::vector<double>{0.1, 0.2},
      std::vector<double>{0.1}};  // wrong length
  EXPECT_THROW(ConfidenceMatrix::from_rows(rows, 2), std::invalid_argument);
}

TEST(ConfidenceMatrix, DistanceRequiresMatchingClassCount) {
  ConfidenceMatrix a(2), b(3);
  EXPECT_THROW(a.distance(b), std::invalid_argument);
  EXPECT_THROW(b.distance(a), std::invalid_argument);
}

}  // namespace
}  // namespace origin::core
