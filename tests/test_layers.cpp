#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

TEST(Dense, ForwardComputesAffine) {
  Dense d(2, 2);
  d.weight().at(0, 0) = 1.0f;
  d.weight().at(0, 1) = 2.0f;
  d.weight().at(1, 0) = -1.0f;
  d.weight().at(1, 1) = 0.5f;
  d.bias()[0] = 0.1f;
  d.bias()[1] = -0.2f;
  const Tensor y = d.forward(Tensor({2}, {3.0f, 4.0f}), false);
  EXPECT_FLOAT_EQ(y[0], 3.0f + 8.0f + 0.1f);
  EXPECT_FLOAT_EQ(y[1], -3.0f + 2.0f - 0.2f);
}

TEST(Dense, ForwardAcceptsFlattenableInput) {
  util::Rng rng(1);
  Dense d(6, 2, rng);
  EXPECT_NO_THROW(d.forward(Tensor({2, 3}), false));
  EXPECT_THROW(d.forward(Tensor({7}), false), std::invalid_argument);
}

TEST(Dense, ShapesAndMacs) {
  Dense d(10, 4);
  EXPECT_EQ(d.output_shape({10}), std::vector<int>{4});
  EXPECT_EQ(d.macs({10}), 40u);
  EXPECT_EQ(d.param_count(), 44u);
  EXPECT_THROW(d.output_shape({11}), std::invalid_argument);
}

TEST(Dense, CloneIsDeep) {
  util::Rng rng(2);
  Dense d(3, 2, rng);
  auto c = d.clone();
  d.weight().at(0, 0) += 1.0f;
  auto* dc = dynamic_cast<Dense*>(c.get());
  ASSERT_NE(dc, nullptr);
  EXPECT_NE(d.weight().at(0, 0), dc->weight().at(0, 0));
}

TEST(Dense, InvalidConstruction) {
  EXPECT_THROW(Dense(0, 2), std::invalid_argument);
  EXPECT_THROW(Dense(2, -1), std::invalid_argument);
}

TEST(Dense, RemoveInputBlock) {
  Dense d(4, 2);
  for (int o = 0; o < 2; ++o)
    for (int i = 0; i < 4; ++i) d.weight().at(o, i) = static_cast<float>(10 * o + i);
  d.remove_input_block(1, 2);
  EXPECT_EQ(d.in_features(), 2);
  EXPECT_FLOAT_EQ(d.weight().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.weight().at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(d.weight().at(1, 1), 13.0f);
  EXPECT_THROW(d.remove_input_block(1, 5), std::invalid_argument);
}

TEST(Dense, RemoveOutputUnit) {
  Dense d(2, 3);
  d.bias()[0] = 1.0f;
  d.bias()[1] = 2.0f;
  d.bias()[2] = 3.0f;
  d.remove_output_unit(1);
  EXPECT_EQ(d.out_features(), 2);
  EXPECT_FLOAT_EQ(d.bias()[1], 3.0f);
  Dense tiny(2, 1);
  EXPECT_THROW(tiny.remove_output_unit(0), std::invalid_argument);
}

TEST(Conv1D, OutLength) {
  EXPECT_EQ(Conv1D::out_length(64, 5, 1), 60);
  EXPECT_EQ(Conv1D::out_length(10, 3, 2), 4);
  EXPECT_EQ(Conv1D::out_length(2, 5, 1), 0);
}

TEST(Conv1D, ForwardIdentityKernel) {
  Conv1D c(1, 1, 1, 1);
  c.weight().at(0, 0, 0) = 2.0f;
  c.bias()[0] = 1.0f;
  const Tensor y = c.forward(Tensor({1, 3}, {1, 2, 3}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.0f);
}

TEST(Conv1D, ForwardKnownConvolution) {
  Conv1D c(1, 1, 2, 1);
  c.weight().at(0, 0, 0) = 1.0f;
  c.weight().at(0, 0, 1) = -1.0f;
  const Tensor y = c.forward(Tensor({1, 4}, {1, 4, 9, 16}), false);
  // Differences: 1-4, 4-9, 9-16
  EXPECT_FLOAT_EQ(y.at(0, 0), -3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), -7.0f);
}

TEST(Conv1D, StrideSkips) {
  Conv1D c(1, 1, 1, 2);
  c.weight().at(0, 0, 0) = 1.0f;
  const Tensor y = c.forward(Tensor({1, 5}, {0, 1, 2, 3, 4}), false);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
}

TEST(Conv1D, ShapeValidation) {
  Conv1D c(2, 3, 5, 1);
  EXPECT_THROW(c.forward(Tensor({3, 10}), false), std::invalid_argument);
  EXPECT_THROW(c.forward(Tensor({2, 3}), false), std::invalid_argument);
  EXPECT_EQ(c.output_shape({2, 10}), (std::vector<int>{3, 6}));
  EXPECT_EQ(c.macs({2, 10}), static_cast<std::uint64_t>(3 * 6 * 2 * 5));
}

TEST(Conv1D, FilterL2AndSurgery) {
  Conv1D c(1, 2, 2, 1);
  c.weight().at(0, 0, 0) = 3.0f;
  c.weight().at(0, 0, 1) = 4.0f;
  c.weight().at(1, 0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(c.filter_l2(0), 5.0f);
  EXPECT_FLOAT_EQ(c.filter_l2(1), 1.0f);
  c.remove_output_filter(1);
  EXPECT_EQ(c.out_channels(), 1);
  EXPECT_FLOAT_EQ(c.filter_l2(0), 5.0f);
  EXPECT_THROW(c.remove_output_filter(0), std::invalid_argument);
}

TEST(Conv1D, RemoveInputChannel) {
  Conv1D c(3, 1, 1, 1);
  c.weight().at(0, 0, 0) = 1.0f;
  c.weight().at(0, 1, 0) = 2.0f;
  c.weight().at(0, 2, 0) = 3.0f;
  c.remove_input_channel(1);
  EXPECT_EQ(c.in_channels(), 2);
  EXPECT_FLOAT_EQ(c.weight().at(0, 1, 0), 3.0f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU r;
  const Tensor y = r.forward(Tensor({4}, {-1, 0, 2, -3}), false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU r;
  r.forward(Tensor({3}, {-1, 1, 0}), true);
  const Tensor g = r.backward(Tensor({3}, {5, 5, 5}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 5.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);  // gradient at exactly 0 defined as 0
}

TEST(Flatten, RoundTripShape) {
  Flatten f;
  const Tensor y = f.forward(Tensor({2, 3}), false);
  EXPECT_EQ(y.rank(), 1);
  EXPECT_EQ(y.size(), 6u);
  const Tensor g = f.backward(Tensor({6}));
  EXPECT_EQ(g.shape(), (std::vector<int>{2, 3}));
}

TEST(MaxPool1D, SelectsMaxima) {
  MaxPool1D p(2);
  const Tensor y = p.forward(Tensor({1, 4}, {1, 7, 3, 2}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);
}

TEST(MaxPool1D, BackwardRoutesToArgmax) {
  MaxPool1D p(2);
  p.forward(Tensor({1, 4}, {1, 7, 3, 2}), true);
  const Tensor g = p.backward(Tensor({1, 2}, {10, 20}));
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(g.at(0, 2), 20.0f);
  EXPECT_FLOAT_EQ(g.at(0, 3), 0.0f);
}

TEST(MaxPool1D, OddLengthDropsTail) {
  MaxPool1D p(2);
  const Tensor y = p.forward(Tensor({1, 5}, {1, 2, 3, 4, 9}), false);
  EXPECT_EQ(y.dim(1), 2);
}

TEST(MaxPool1D, Validation) {
  EXPECT_THROW(MaxPool1D(0), std::invalid_argument);
  MaxPool1D p(4);
  EXPECT_THROW(p.forward(Tensor({1, 3}), false), std::invalid_argument);
  EXPECT_THROW(p.output_shape({3}), std::invalid_argument);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout d(0.5f);
  const Tensor x({8}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor y = d.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainDropsAndRescales) {
  Dropout d(0.5f, 123);
  Tensor x = Tensor::full({10000}, 1.0f);
  const Tensor y = d.forward(x, true);
  int zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // inverted dropout rescale
    }
    sum += y[i];
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.06);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.5f, 7);
  Tensor x = Tensor::full({100}, 1.0f);
  const Tensor y = d.forward(x, true);
  const Tensor g = d.backward(Tensor::full({100}, 1.0f));
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(g[i], y[i]);
  }
}

TEST(Dropout, InvalidRate) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Softmax, SumsToOne) {
  Softmax s;
  const Tensor y = s.forward(Tensor({3}, {1.0f, 2.0f, 3.0f}), false);
  EXPECT_NEAR(y.sum(), 1.0f, 1e-6);
  EXPECT_GT(y[2], y[1]);
  EXPECT_GT(y[1], y[0]);
}

TEST(Softmax, StableForLargeLogits) {
  const auto p = softmax({1000.0f, 1000.0f, 999.0f});
  EXPECT_NEAR(p[0], p[1], 1e-6);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-6);
}

TEST(Softmax, EmptyInput) {
  EXPECT_TRUE(softmax({}).empty());
}

}  // namespace
}  // namespace origin::nn
