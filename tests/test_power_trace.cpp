#include "energy/power_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/rng.hpp"

namespace origin::energy {
namespace {

TEST(PowerTrace, ValidatesConstruction) {
  EXPECT_THROW(PowerTrace({}, 0.1), std::invalid_argument);
  EXPECT_THROW(PowerTrace({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerTrace({-1.0}, 0.1), std::invalid_argument);
}

TEST(PowerTrace, PowerAtSamplesAndWraps) {
  PowerTrace trace({1.0, 2.0, 3.0}, 1.0);
  EXPECT_DOUBLE_EQ(trace.power_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(trace.power_at(1.5), 2.0);
  EXPECT_DOUBLE_EQ(trace.power_at(2.9), 3.0);
  EXPECT_DOUBLE_EQ(trace.power_at(3.5), 1.0);   // wrapped
  EXPECT_DOUBLE_EQ(trace.power_at(7.5), 2.0);   // wrapped twice
  EXPECT_THROW(trace.power_at(-1.0), std::invalid_argument);
}

TEST(PowerTrace, EnergyBetweenExact) {
  PowerTrace trace({1.0, 2.0, 3.0}, 1.0);
  EXPECT_DOUBLE_EQ(trace.energy_between(0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(trace.energy_between(0.5, 1.5), 0.5 * 1.0 + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(trace.energy_between(1.0, 1.0), 0.0);
}

TEST(PowerTrace, EnergyBetweenWrapsLoops) {
  PowerTrace trace({1.0, 3.0}, 1.0);
  // One loop = 4 J over 2 s.
  EXPECT_DOUBLE_EQ(trace.energy_between(0.0, 6.0), 12.0);
  EXPECT_DOUBLE_EQ(trace.energy_between(1.5, 2.5), 0.5 * 3.0 + 0.5 * 1.0);
}

TEST(PowerTrace, EnergyMatchesNumericIntegration) {
  util::Rng rng(1);
  std::vector<double> samples(100);
  for (auto& s : samples) s = rng.uniform(0.0, 5.0);
  PowerTrace trace(samples, 0.1);
  // Numeric: sum over fine steps.
  const double t0 = 1.234, t1 = 17.89;
  double numeric = 0.0;
  const double dt = 1e-4;
  for (double t = t0; t < t1; t += dt) numeric += trace.power_at(t) * dt;
  EXPECT_NEAR(trace.energy_between(t0, t1), numeric, numeric * 1e-2 + 1e-6);
}

TEST(PowerTrace, EnergyIsAdditive) {
  util::Rng rng(2);
  std::vector<double> samples(50);
  for (auto& s : samples) s = rng.uniform(0.0, 2.0);
  PowerTrace trace(samples, 0.25);
  const double a = trace.energy_between(0.3, 5.7);
  const double b = trace.energy_between(5.7, 11.2);
  EXPECT_NEAR(trace.energy_between(0.3, 11.2), a + b, 1e-9);
}

TEST(PowerTrace, BadIntervalThrows) {
  PowerTrace trace({1.0}, 1.0);
  EXPECT_THROW(trace.energy_between(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(trace.energy_between(-1.0, 1.0), std::invalid_argument);
}

TEST(PowerTrace, AveragePeakDuty) {
  PowerTrace trace({0.0, 4.0, 0.0, 4.0}, 1.0);
  EXPECT_DOUBLE_EQ(trace.average_power_w(), 2.0);
  EXPECT_DOUBLE_EQ(trace.peak_power_w(), 4.0);
  EXPECT_DOUBLE_EQ(trace.duty_cycle(1.0), 0.5);
  EXPECT_DOUBLE_EQ(trace.duty_cycle(5.0), 0.0);
}

TEST(PowerTrace, GeneratedTraceIsBursty) {
  TraceConfig cfg;
  const PowerTrace trace = PowerTrace::generate_wifi_office(cfg, 42);
  EXPECT_EQ(trace.sample_count(),
            static_cast<std::size_t>(std::ceil(cfg.duration_s / cfg.dt_s)));
  // Duty cycle of bursts ~ mean_burst / (mean_burst + mean_idle) ~ 0.29.
  const double duty = trace.duty_cycle(2.0 * cfg.background_w);
  EXPECT_GT(duty, 0.1);
  EXPECT_LT(duty, 0.6);
  // Heavy-tailed: peak well above average.
  EXPECT_GT(trace.peak_power_w(), 3.0 * trace.average_power_w());
  // Background floor present everywhere.
  for (double p : trace.samples()) EXPECT_GE(p, cfg.background_w * 0.99);
}

TEST(PowerTrace, GenerationDeterministicPerSeed) {
  TraceConfig cfg;
  cfg.duration_s = 100.0;
  const auto a = PowerTrace::generate_wifi_office(cfg, 7);
  const auto b = PowerTrace::generate_wifi_office(cfg, 7);
  const auto c = PowerTrace::generate_wifi_office(cfg, 8);
  ASSERT_EQ(a.sample_count(), b.sample_count());
  for (std::size_t i = 0; i < a.sample_count(); ++i) {
    ASSERT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
  EXPECT_NE(a.average_power_w(), c.average_power_w());
}

TEST(PowerTrace, CsvRoundtrip) {
  TraceConfig cfg;
  cfg.duration_s = 20.0;
  const auto trace = PowerTrace::generate_wifi_office(cfg, 3);
  const auto path =
      (std::filesystem::temp_directory_path() / "origin_trace.csv").string();
  trace.save_csv(path);
  const auto loaded = PowerTrace::load_csv(path);
  ASSERT_EQ(loaded.sample_count(), trace.sample_count());
  EXPECT_NEAR(loaded.dt(), trace.dt(), 1e-9);
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    ASSERT_NEAR(loaded.samples()[i], trace.samples()[i],
                1e-9 * trace.samples()[i] + 1e-18);
  }
  std::filesystem::remove(path);
}

TEST(PowerTrace, LoadCsvRejectsGarbage) {
  EXPECT_THROW(PowerTrace::load_csv("/no/such/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace origin::energy
