// Snapshot/restore of the serving loop: the byte codec, the atomic file
// helpers, and the headline guarantee — serve N ticks, snapshot, restore
// into a fresh loop and serve the rest, and the completed-session log and
// every deterministic metric are bit-identical to a run that never
// stopped, at threads 1/2/8 and across the split.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <stdexcept>

#include "serve/serve_loop.hpp"

namespace origin::serve {
namespace {

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class ServeSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 60;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static ServeConfig small_config() {
    ServeConfig cfg;
    cfg.users = 6;
    cfg.arrival_rate_hz = 2.0;
    cfg.shards = 3;
    cfg.policy = sim::PolicyKind::Origin;
    return cfg;
  }

  static std::string temp_path(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  static void expect_same_completed(
      const std::vector<CompletedSession>& a,
      const std::vector<CompletedSession>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
      EXPECT_EQ(a[i].completed_tick, b[i].completed_tick);
      EXPECT_EQ(a[i].slots, b[i].slots);
      EXPECT_EQ(a[i].accuracy, b[i].accuracy);
      EXPECT_EQ(a[i].success_rate, b[i].success_rate);
      EXPECT_EQ(a[i].harvested_j, b[i].harvested_j);
      EXPECT_EQ(a[i].consumed_j, b[i].consumed_j);
      EXPECT_EQ(a[i].outputs_fnv1a, b[i].outputs_fnv1a);
      EXPECT_EQ(a[i].outputs, b[i].outputs);
    }
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* ServeSnapshotTest::experiment_ = nullptr;

TEST(SnapshotCodec, RoundTripsEveryType) {
  SnapshotWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f32(1.5f);
  w.f64(-0.1);
  w.f64(std::numeric_limits<double>::infinity());
  w.raw("xy", 2);

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -0.1);  // bitwise round-trip, not approximate
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  const char* p = r.take(2);
  EXPECT_EQ(p[0], 'x');
  EXPECT_EQ(p[1], 'y');
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.u8(), std::runtime_error);
}

TEST(SnapshotCodec, AtomicWriteAndRead) {
  const std::string path = testing::TempDir() + "/codec_file.bin";
  write_file_atomic(path, "hello snapshot");
  EXPECT_EQ(read_file(path), "hello snapshot");
  write_file_atomic(path, "v2");  // replaces atomically
  EXPECT_EQ(read_file(path), "v2");
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), std::runtime_error);
  EXPECT_THROW(write_file_atomic("/no/such/dir/x.bin", "z"),
               std::runtime_error);
}

TEST_F(ServeSnapshotTest, SplitRunBitIdenticalToUninterrupted) {
  // The acceptance check of the subsystem: serve N slots, snapshot,
  // restore into a fresh ServeLoop, serve the rest — bit-identical to
  // the uninterrupted run, at threads 1/2/8 (restoring under a different
  // thread count than the save, on purpose).
  ServeConfig cfg = small_config();
  ServeLoop uninterrupted(*experiment_, cfg);
  uninterrupted.drain(/*chunk=*/5);
  const auto full_log = uninterrupted.completed_sessions();
  const auto full_metrics = uninterrupted.metrics();
  ASSERT_EQ(full_log.size(), cfg.users);

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    const std::string path =
        temp_path("split_" + std::to_string(threads) + ".snap");

    ServeConfig first_cfg = cfg;
    first_cfg.threads = threads;
    ServeLoop first(*experiment_, first_cfg);
    first.tick(13);  // mid-flight: arrivals pending, sessions part-served
    ASSERT_FALSE(first.done());
    first.save(path);

    ServeConfig second_cfg = cfg;
    second_cfg.threads = threads == 1 ? 2 : 1;
    ServeLoop second(*experiment_, second_cfg);
    second.restore(path);
    EXPECT_EQ(second.now(), first.now());
    EXPECT_EQ(second.status().admitted, first.status().admitted);
    second.drain(/*chunk=*/5);

    expect_same_completed(second.completed_sessions(), full_log);
    EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(
        second.metrics(), full_metrics));
    std::remove(path.c_str());
  }
}

TEST_F(ServeSnapshotTest, SavedSummariesSurviveRestore) {
  ServeConfig cfg = small_config();
  ServeLoop first(*experiment_, cfg);
  first.tick(9);
  const auto before = first.session_summaries();
  ASSERT_FALSE(before.empty());
  const std::string path = temp_path("summaries.snap");
  first.save(path);

  ServeLoop second(*experiment_, cfg);
  second.restore(path);
  const auto after = second.session_summaries();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(after[i].slots_done, before[i].slots_done);
    EXPECT_EQ(after[i].accuracy, before[i].accuracy);
    EXPECT_EQ(after[i].attempts, before[i].attempts);
    for (std::size_t s = 0; s < data::kNumSensors; ++s) {
      EXPECT_EQ(after[i].stored_j[s], before[i].stored_j[s]);
    }
  }
  std::remove(path.c_str());
}

TEST_F(ServeSnapshotTest, RestoreRequiresFreshLoop) {
  ServeConfig cfg = small_config();
  ServeLoop first(*experiment_, cfg);
  first.tick(4);
  const std::string path = temp_path("fresh.snap");
  first.save(path);

  ServeLoop ticked(*experiment_, cfg);
  ticked.tick(1);
  EXPECT_THROW(ticked.restore(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(ServeSnapshotTest, ConfigFingerprintMismatchRejected) {
  ServeConfig cfg = small_config();
  ServeLoop first(*experiment_, cfg);
  first.tick(4);
  const std::string path = temp_path("fingerprint.snap");
  first.save(path);

  ServeConfig other = cfg;
  other.users = cfg.users + 1;
  ServeLoop wrong_users(*experiment_, other);
  EXPECT_THROW(wrong_users.restore(path), std::runtime_error);

  other = cfg;
  other.policy = sim::PolicyKind::AASR;
  ServeLoop wrong_policy(*experiment_, other);
  EXPECT_THROW(wrong_policy.restore(path), std::runtime_error);

  other = cfg;
  other.shards = cfg.shards + 1;
  ServeLoop wrong_shards(*experiment_, other);
  EXPECT_THROW(wrong_shards.restore(path), std::runtime_error);

  // Threads are NOT part of the fingerprint.
  other = cfg;
  other.threads = 4;
  ServeLoop more_threads(*experiment_, other);
  EXPECT_NO_THROW(more_threads.restore(path));
  std::remove(path.c_str());
}

TEST_F(ServeSnapshotTest, CorruptAndTruncatedFilesRejected) {
  ServeConfig cfg = small_config();
  ServeLoop first(*experiment_, cfg);
  first.tick(4);
  const std::string path = temp_path("corrupt.snap");
  first.save(path);
  const std::string good = read_file(path);

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  write_file_atomic(path, bad);
  {
    ServeLoop loop(*experiment_, cfg);
    EXPECT_THROW(loop.restore(path), std::runtime_error);
  }

  // Unsupported version.
  bad = good;
  bad[8] = static_cast<char>(kSnapshotVersion + 1);
  write_file_atomic(path, bad);
  {
    ServeLoop loop(*experiment_, cfg);
    EXPECT_THROW(loop.restore(path), std::runtime_error);
  }

  // Truncation.
  write_file_atomic(path, good.substr(0, good.size() / 2));
  {
    ServeLoop loop(*experiment_, cfg);
    EXPECT_THROW(loop.restore(path), std::runtime_error);
  }

  // Trailing garbage.
  write_file_atomic(path, good + "extra");
  {
    ServeLoop loop(*experiment_, cfg);
    EXPECT_THROW(loop.restore(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST_F(ServeSnapshotTest, ServeBatchModeFreeAcrossRestore) {
  // serve_batch never affects results, so like threads it stays out of
  // the config fingerprint: a snapshot taken while batching can restore
  // into a sequential loop (and vice versa) and finish bit-identical to
  // an uninterrupted run. The batch stats themselves ride the snapshot
  // so /status stays continuous.
  ServeConfig batched_cfg = small_config();
  batched_cfg.serve_batch = 1;
  ServeLoop uninterrupted(*experiment_, batched_cfg);
  uninterrupted.drain(/*chunk=*/5);
  const auto full_log = uninterrupted.completed_sessions();
  ASSERT_EQ(full_log.size(), batched_cfg.users);

  const std::string path = temp_path("serve_batch_mode.snap");
  ServeLoop first(*experiment_, batched_cfg);
  first.tick(13);
  ASSERT_FALSE(first.done());
  const auto saved_status = first.status();
  EXPECT_TRUE(saved_status.serve_batch);
  EXPECT_GT(saved_status.batch_panels, 0u);
  first.save(path);

  ServeConfig sequential_cfg = small_config();
  sequential_cfg.serve_batch = 0;
  ServeLoop second(*experiment_, sequential_cfg);
  second.restore(path);
  EXPECT_FALSE(second.serve_batch());
  // Panel stats from the batched half survive the restore...
  EXPECT_EQ(second.status().batch_panels, saved_status.batch_panels);
  EXPECT_EQ(second.status().batch_windows, saved_status.batch_windows);
  second.drain(/*chunk=*/5);
  // ...and the sequential second half completes the same fleet.
  expect_same_completed(second.completed_sessions(), full_log);
  std::remove(path.c_str());
}

TEST_F(ServeSnapshotTest, FinishedRunRoundTrips) {
  ServeConfig cfg = small_config();
  ServeLoop first(*experiment_, cfg);
  first.drain();
  const std::string path = temp_path("finished.snap");
  first.save(path);

  ServeLoop second(*experiment_, cfg);
  second.restore(path);
  EXPECT_TRUE(second.done());
  expect_same_completed(second.completed_sessions(),
                        first.completed_sessions());
  EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(second.metrics(),
                                                        first.metrics()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace origin::serve
