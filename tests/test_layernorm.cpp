#include "nn/layernorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

TEST(LayerNorm, Validation) {
  EXPECT_THROW(LayerNorm(0), std::invalid_argument);
  EXPECT_THROW(LayerNorm(4, 0.0f), std::invalid_argument);
  LayerNorm ln(4);
  EXPECT_THROW(ln.forward(Tensor({5}), false), std::invalid_argument);
  EXPECT_THROW(ln.output_shape({5}), std::invalid_argument);
}

TEST(LayerNorm, NormalizesToZeroMeanUnitVar) {
  LayerNorm ln(4);
  const Tensor y = ln.forward(Tensor({4}, {2.0f, 4.0f, 6.0f, 8.0f}), false);
  float mean = 0.0f;
  for (std::size_t i = 0; i < 4; ++i) mean += y[i];
  EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
  float var = 0.0f;
  for (std::size_t i = 0; i < 4; ++i) var += y[i] * y[i];
  EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
}

TEST(LayerNorm, GammaBetaApply) {
  LayerNorm ln(2);
  ln.gamma()[0] = 3.0f;
  ln.beta()[1] = -1.0f;
  const Tensor y = ln.forward(Tensor({2}, {0.0f, 2.0f}), false);
  // x_hat = [-1, 1]
  EXPECT_NEAR(y[0], -3.0f, 1e-3f);
  EXPECT_NEAR(y[1], 0.0f, 1e-3f);
}

TEST(LayerNorm, PreservesShape) {
  LayerNorm ln(6);
  const Tensor y = ln.forward(Tensor({2, 3}), false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3}));
  EXPECT_EQ(ln.output_shape({2, 3}), (std::vector<int>{2, 3}));
}

TEST(LayerNorm, ScaleInvariance) {
  // LayerNorm output (with unit gamma) is invariant to input scaling.
  LayerNorm ln(5);
  util::Rng rng(1);
  Tensor x = Tensor::randn({5}, rng, 1.0f);
  Tensor scaled = x;
  scaled.scale(7.0f);
  const Tensor y1 = ln.forward(x, false);
  const Tensor y2 = ln.forward(scaled, false);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-3f);
}

TEST(LayerNorm, GradCheckFullModel) {
  util::Rng rng(2);
  Sequential m;
  m.emplace<Dense>(6, 8, rng)
      .emplace<LayerNorm>(8)
      .emplace<ReLU>()
      .emplace<Dense>(8, 3, rng);
  const Tensor x = Tensor::randn({6}, rng, 1.0f);
  const int target = 1;

  m.zero_grads();
  // train=true so layers cache what backward() needs (no Dropout here, so
  // results match the inference path).
  const Tensor logits = m.forward(x, true);
  m.backward(softmax_cross_entropy(logits, target).grad);

  const auto params = m.params();
  const auto grads = m.grads();
  const double eps = 1e-3;
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p]->size(); ++i) {
      const float saved = (*params[p])[i];
      (*params[p])[i] = saved + static_cast<float>(eps);
      const double lp = softmax_cross_entropy(m.forward(x, false), target).loss;
      (*params[p])[i] = saved - static_cast<float>(eps);
      const double lm = softmax_cross_entropy(m.forward(x, false), target).loss;
      (*params[p])[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = (*grads[p])[i];
      const double denom =
          std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      ASSERT_NEAR(analytic / denom, numeric / denom, 3e-2)
          << "param " << p << " elem " << i;
    }
  }
}

TEST(LayerNorm, InputGradCheck) {
  LayerNorm ln(5);
  util::Rng rng(3);
  ln.gamma() = Tensor::randn({5}, rng, 1.0f);
  const Tensor x = Tensor::randn({5}, rng, 1.0f);
  const Tensor upstream({5}, {0.2f, -0.4f, 0.6f, 0.1f, -0.5f});
  ln.forward(x, false);
  for (Tensor* g : ln.grads()) g->zero();
  const Tensor grad = ln.backward(upstream);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const Tensor yp = ln.forward(xp, false);
    const Tensor ym = ln.forward(xm, false);
    double numeric = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      numeric += upstream[j] * (yp[j] - ym[j]) / (2.0 * eps);
    }
    ASSERT_NEAR(grad[i], numeric, 5e-3) << "input " << i;
  }
}

TEST(LayerNorm, SerializationRoundtrip) {
  util::Rng rng(4);
  Sequential m;
  m.emplace<Dense>(4, 6, rng).emplace<LayerNorm>(6).emplace<Dense>(6, 2, rng);
  auto* ln = dynamic_cast<LayerNorm*>(&m.layer(1));
  ASSERT_NE(ln, nullptr);
  ln->gamma()[2] = 2.5f;
  ln->beta()[3] = -0.5f;
  Sequential loaded = model_from_string(model_to_string(m));
  const Tensor x = Tensor::randn({4}, rng, 1.0f);
  const Tensor ya = m.forward(x, false);
  const Tensor yb = loaded.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(LayerNorm, CloneIsDeep) {
  LayerNorm ln(3);
  ln.gamma()[0] = 5.0f;
  auto copy = ln.clone();
  ln.gamma()[0] = 1.0f;
  auto* c = dynamic_cast<LayerNorm*>(copy.get());
  ASSERT_NE(c, nullptr);
  EXPECT_FLOAT_EQ(c->gamma()[0], 5.0f);
}

}  // namespace
}  // namespace origin::nn
