#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "nn/dense.hpp"

namespace origin::core {
namespace {

PipelineConfig micro(const std::string& cache_dir, bool use_cache) {
  PipelineConfig cfg;
  cfg.train_per_class = 10;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.cache_dir = cache_dir;
  cfg.use_cache = use_cache;
  cfg.seed = 555;
  return cfg;
}

TEST(PipelineCache, KeyIsStable) {
  const auto a = pipeline_cache_key(micro("x", false));
  const auto b = pipeline_cache_key(micro("y", true));  // cache fields excluded
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);  // hex64
}

TEST(PipelineCache, KeyChangesWithConfig) {
  auto base = micro("x", false);
  auto other = base;
  other.seed = 556;
  EXPECT_NE(pipeline_cache_key(base), pipeline_cache_key(other));
  other = base;
  other.bl2_budget_fraction = 0.5;
  EXPECT_NE(pipeline_cache_key(base), pipeline_cache_key(other));
  other = base;
  other.kind = data::DatasetKind::Pamap2Like;
  EXPECT_NE(pipeline_cache_key(base), pipeline_cache_key(other));
  other = base;
  other.train.epochs = 3;
  EXPECT_NE(pipeline_cache_key(base), pipeline_cache_key(other));
}

TEST(PipelineCache, RoundtripReproducesModels) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "origin_cache_test").string();
  std::filesystem::remove_all(dir);

  // First build trains and populates the cache.
  auto first = build_system(micro(dir, true));
  ASSERT_FALSE(std::filesystem::is_empty(dir));
  // Second build must load identical weights.
  auto second = build_system(micro(dir, true));
  const auto& sample = first.test_sets[0][0];
  for (int s = 0; s < data::kNumSensors; ++s) {
    const auto si = static_cast<std::size_t>(s);
    EXPECT_EQ(first.sensors[si].bl2.param_count(),
              second.sensors[si].bl2.param_count());
    EXPECT_EQ(first.sensors[si].bl2.predict(sample.input),
              second.sensors[si].bl2.predict(sample.input));
  }
  std::filesystem::remove_all(dir);
}

TEST(PipelineCache, CorruptCacheRetrains) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "origin_cache_corrupt").string();
  std::filesystem::remove_all(dir);
  build_system(micro(dir, true));
  // Truncate every cached blob.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::resize_file(entry.path(), 4);
  }
  // Must fall back to retraining rather than crash.
  EXPECT_NO_THROW(build_system(micro(dir, true)));
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, ArchitectureShapes) {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  auto net = make_bl1_architecture(spec, 1);
  EXPECT_EQ(net.output_shape({spec.channels, spec.window_len}),
            std::vector<int>{spec.num_classes()});
  const auto p2 = data::dataset_spec(data::DatasetKind::Pamap2Like);
  auto net2 = make_bl1_architecture(p2, 2);
  EXPECT_EQ(net2.output_shape({p2.channels, p2.window_len}),
            std::vector<int>{5});
}

TEST(Pipeline, ArchitectureSeedChangesWeights) {
  const auto spec = data::dataset_spec(data::DatasetKind::MHealthLike);
  auto a = make_bl1_architecture(spec, 1);
  auto b = make_bl1_architecture(spec, 2);
  nn::Tensor x({spec.channels, spec.window_len});
  x.fill(0.5f);
  const auto ya = a.forward(x, false);
  const auto yb = b.forward(x, false);
  bool differ = false;
  for (std::size_t i = 0; i < ya.size(); ++i) {
    if (ya[i] != yb[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Pipeline, PerClassAccuracyCountsCorrectly) {
  // A constant-output model: 100% on its favourite class, 0% elsewhere.
  nn::Sequential constant;
  constant.emplace<nn::Dense>(4, 3);
  auto* d = dynamic_cast<nn::Dense*>(&constant.layer(0));
  d->bias()[1] = 10.0f;
  nn::Samples samples;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) samples.push_back({nn::Tensor({4}), c});
  }
  const auto acc = per_class_accuracy(constant, samples, 3);
  EXPECT_DOUBLE_EQ(acc[0], 0.0);
  EXPECT_DOUBLE_EQ(acc[1], 1.0);
  EXPECT_DOUBLE_EQ(acc[2], 0.0);
}

}  // namespace
}  // namespace origin::core
