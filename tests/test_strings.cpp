#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace origin::util {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD Case 123"), "mixed case 123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinInvertsSplit) {
  const std::string s = "x|y|z";
  EXPECT_EQ(join(split(s, '|'), "|"), s);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("origin_models", "origin"));
  EXPECT_FALSE(starts_with("or", "origin"));
  EXPECT_TRUE(ends_with("model.bin", ".bin"));
  EXPECT_FALSE(ends_with("bin", ".bin"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, Fnv1aKnownValues) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Strings, Fnv1aDistinguishes) {
  EXPECT_NE(fnv1a("config-a"), fnv1a("config-b"));
}

TEST(Strings, Hex64Format) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hex64(0xffffffffffffffffULL), "ffffffffffffffff");
}

}  // namespace
}  // namespace origin::util
