#include "energy/capacitor.hpp"

#include <gtest/gtest.h>

namespace origin::energy {
namespace {

TEST(Capacitor, Validation) {
  EXPECT_THROW(Capacitor(0.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(-1.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(1.0, 0.0, -1.0), std::invalid_argument);
}

TEST(Capacitor, InitialChargeClamped) {
  Capacitor c(10.0, 20.0);
  EXPECT_DOUBLE_EQ(c.stored_j(), 10.0);
  Capacitor d(10.0, -5.0);
  EXPECT_DOUBLE_EQ(d.stored_j(), 0.0);
}

TEST(Capacitor, HarvestClampsAtCapacity) {
  Capacitor c(10.0, 8.0);
  EXPECT_DOUBLE_EQ(c.harvest(5.0), 2.0);  // only 2 J fit
  EXPECT_DOUBLE_EQ(c.stored_j(), 10.0);
  EXPECT_TRUE(c.full());
  EXPECT_DOUBLE_EQ(c.headroom_j(), 0.0);
}

TEST(Capacitor, HarvestNegativeThrows) {
  Capacitor c(1.0);
  EXPECT_THROW(c.harvest(-0.1), std::invalid_argument);
}

TEST(Capacitor, TryDrawAtomic) {
  Capacitor c(10.0, 5.0);
  EXPECT_FALSE(c.try_draw(6.0));
  EXPECT_DOUBLE_EQ(c.stored_j(), 5.0);  // nothing taken on failure
  EXPECT_TRUE(c.try_draw(5.0));
  EXPECT_DOUBLE_EQ(c.stored_j(), 0.0);
}

TEST(Capacitor, TryDrawToleratesRoundoff) {
  Capacitor c(1.0, 0.3);
  // Repeated float-ish arithmetic should still allow drawing "everything".
  EXPECT_TRUE(c.try_draw(0.1));
  EXPECT_TRUE(c.try_draw(0.2));
  EXPECT_FALSE(c.try_draw(1e-6));
}

TEST(Capacitor, DrawUpToPartial) {
  Capacitor c(10.0, 3.0);
  EXPECT_DOUBLE_EQ(c.draw_up_to(5.0), 3.0);
  EXPECT_DOUBLE_EQ(c.stored_j(), 0.0);
  EXPECT_DOUBLE_EQ(c.draw_up_to(1.0), 0.0);
}

TEST(Capacitor, LeakDrains) {
  Capacitor c(10.0, 1.0, 0.1);
  c.leak(5.0);
  EXPECT_DOUBLE_EQ(c.stored_j(), 0.5);
  c.leak(100.0);
  EXPECT_DOUBLE_EQ(c.stored_j(), 0.0);  // floors at zero
  EXPECT_THROW(c.leak(-1.0), std::invalid_argument);
}

TEST(Capacitor, ZeroLeakageIsLossless) {
  Capacitor c(10.0, 4.0, 0.0);
  c.leak(1000.0);
  EXPECT_DOUBLE_EQ(c.stored_j(), 4.0);
}

}  // namespace
}  // namespace origin::energy
