#include "data/import.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/dataset.hpp"

namespace origin::data {
namespace {

std::string temp_csv(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class ImportTest : public ::testing::Test {
 protected:
  DatasetSpec spec = dataset_spec(DatasetKind::MHealthLike);
};

TEST_F(ImportTest, RoundtripPreservesEverything) {
  const auto samples =
      make_training_set(spec, SensorLocation::Chest, 4, reference_user(), 1);
  const auto path = temp_csv("origin_import_rt.csv");
  save_samples_csv(path, samples, spec);
  const auto loaded = load_samples_csv(path, spec);
  ASSERT_EQ(loaded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ASSERT_EQ(loaded[i].label, samples[i].label);
    ASSERT_EQ(loaded[i].input.shape(), samples[i].input.shape());
    for (std::size_t j = 0; j < samples[i].input.size(); ++j) {
      ASSERT_NEAR(loaded[i].input[j], samples[i].input[j], 1e-5f);
    }
  }
  std::filesystem::remove(path);
}

TEST_F(ImportTest, EmptySetRoundtrips) {
  const auto path = temp_csv("origin_import_empty.csv");
  save_samples_csv(path, {}, spec);
  EXPECT_TRUE(load_samples_csv(path, spec).empty());
  std::filesystem::remove(path);
}

TEST_F(ImportTest, SaveRejectsWrongShape) {
  nn::Samples bad;
  bad.push_back({nn::Tensor({2, 3}), 0});
  EXPECT_THROW(save_samples_csv(temp_csv("origin_import_bad.csv"), bad, spec),
               std::invalid_argument);
}

TEST_F(ImportTest, LoadRejectsWrongColumnCount) {
  const auto pamap = dataset_spec(DatasetKind::Pamap2Like);
  auto narrow = spec;
  narrow.window_len = 32;  // fewer columns than the file will have
  const auto samples =
      make_training_set(pamap, SensorLocation::Chest, 2, reference_user(), 2);
  const auto path = temp_csv("origin_import_cols.csv");
  save_samples_csv(path, samples, pamap);
  EXPECT_THROW(load_samples_csv(path, narrow), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(ImportTest, LoadRejectsOutOfRangeLabel) {
  // Write with the 6-class spec, read with the 5-class spec: class 5 rows
  // must be rejected.
  nn::Samples samples;
  samples.push_back({nn::Tensor({spec.channels, spec.window_len}), 5});
  const auto path = temp_csv("origin_import_label.csv");
  save_samples_csv(path, samples, spec);
  auto pamap = dataset_spec(DatasetKind::Pamap2Like);
  EXPECT_THROW(load_samples_csv(path, pamap), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(ImportTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_samples_csv("/no/such/windows.csv", spec),
               std::runtime_error);
}

TEST_F(ImportTest, LoadedSamplesAreTrainable) {
  const auto samples =
      make_training_set(spec, SensorLocation::LeftAnkle, 3, reference_user(), 3);
  const auto path = temp_csv("origin_import_train.csv");
  save_samples_csv(path, samples, spec);
  const auto loaded = load_samples_csv(path, spec);
  // The loaded tensors must have the simulator's expected rank-2 shape.
  EXPECT_EQ(loaded.front().input.rank(), 2);
  EXPECT_EQ(loaded.front().input.dim(0), spec.channels);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace origin::data
