#include "fleet/fleet_runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sim/repeat.hpp"

namespace origin::fleet {
namespace {

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class FleetRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 120;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static std::vector<FleetJob> small_population() {
    PopulationConfig pop;
    pop.users = 6;
    pop.runs_per_user = 1;
    pop.root_seed = 99;
    pop.policy = sim::PolicyKind::PlainRR;
    pop.rr_cycle = 6;
    return make_population(pop);
  }

  static FleetResult run_with_threads(unsigned threads,
                                      std::size_t shard_size = 1) {
    FleetRunnerConfig cfg;
    cfg.threads = threads;
    cfg.shard_size = shard_size;
    return FleetRunner(*experiment_, cfg).run(small_population());
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* FleetRunnerTest::experiment_ = nullptr;

TEST_F(FleetRunnerTest, AggregateBitIdenticalAcrossThreadCounts) {
  const auto r1 = run_with_threads(1);
  const auto r4 = run_with_threads(4);
  const auto r8 = run_with_threads(8);  // oversubscribed: 8 threads, 6 shards

  for (const auto* r : {&r4, &r8}) {
    EXPECT_EQ(r->aggregate.jobs, r1.aggregate.jobs);
    EXPECT_EQ(r->aggregate.attempts, r1.aggregate.attempts);
    EXPECT_EQ(r->aggregate.completions, r1.aggregate.completions);
    // Bitwise equality, not EXPECT_NEAR: same shards, same merge order.
    EXPECT_EQ(r->aggregate.accuracy.count(), r1.aggregate.accuracy.count());
    EXPECT_EQ(r->aggregate.accuracy.mean(), r1.aggregate.accuracy.mean());
    EXPECT_EQ(r->aggregate.accuracy.variance(),
              r1.aggregate.accuracy.variance());
    EXPECT_EQ(r->aggregate.success_rate.mean(),
              r1.aggregate.success_rate.mean());
    EXPECT_EQ(r->aggregate.success_rate.variance(),
              r1.aggregate.success_rate.variance());
    ASSERT_EQ(r->jobs.size(), r1.jobs.size());
    for (std::size_t j = 0; j < r1.jobs.size(); ++j) {
      EXPECT_EQ(r->jobs[j].accuracy, r1.jobs[j].accuracy);
      EXPECT_EQ(r->jobs[j].success_rate, r1.jobs[j].success_rate);
    }
  }
}

TEST_F(FleetRunnerTest, MultiJobShardsKeepJobResultsIdentical) {
  // Shard layout changes the merge tree (and thus may change the last
  // bits of the aggregate), but never any per-job result.
  const auto a = run_with_threads(2, /*shard_size=*/1);
  const auto b = run_with_threads(2, /*shard_size=*/4);
  EXPECT_EQ(a.shard_timings.size(), 6u);
  EXPECT_EQ(b.shard_timings.size(), 2u);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].accuracy, b.jobs[j].accuracy);
  }
  EXPECT_NEAR(a.aggregate.accuracy.mean(), b.aggregate.accuracy.mean(), 1e-12);
}

TEST_F(FleetRunnerTest, OversubscriptionMoreShardsThanThreads) {
  const auto r = run_with_threads(2);  // 6 single-job shards on 2 threads
  EXPECT_EQ(r.aggregate.jobs, 6u);
  EXPECT_EQ(r.shard_timings.size(), 6u);
  for (const auto& t : r.shard_timings) {
    EXPECT_EQ(t.jobs, 1u);
    EXPECT_GE(t.seconds, 0.0);
  }
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.users_per_second(), 0.0);
}

TEST_F(FleetRunnerTest, ExceptionInShardRethrowsAtJoin) {
  auto jobs = small_population();
  jobs[3].policy = static_cast<sim::PolicyKind>(99);  // make_policy throws
  for (unsigned threads : {1u, 4u}) {
    FleetRunnerConfig cfg;
    cfg.threads = threads;
    EXPECT_THROW(FleetRunner(*experiment_, cfg).run(jobs),
                 std::invalid_argument);
  }
}

TEST_F(FleetRunnerTest, KeepSimResultsMatchesScalars) {
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  cfg.keep_sim_results = true;
  const auto r = FleetRunner(*experiment_, cfg).run(small_population());
  ASSERT_EQ(r.sim_results.size(), r.jobs.size());
  for (std::size_t j = 0; j < r.jobs.size(); ++j) {
    EXPECT_EQ(r.sim_results[j].accuracy.overall(), r.jobs[j].accuracy);
    EXPECT_EQ(r.sim_results[j].completion.attempt_success_rate(),
              r.jobs[j].success_rate);
  }
}

TEST_F(FleetRunnerTest, ProgressReportsEveryShard) {
  FleetRunnerConfig cfg;
  cfg.threads = 3;
  std::vector<std::size_t> seen;
  cfg.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 6u);
    seen.push_back(done);  // callback is serialized by the runner
  };
  FleetRunner(*experiment_, cfg).run(small_population());
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST_F(FleetRunnerTest, BaselineJobsRunFullyPowered) {
  std::vector<FleetJob> jobs(2);
  jobs[0].baseline = core::BaselineKind::BL2;
  jobs[0].seed_offset = 1;
  jobs[1].baseline = core::BaselineKind::BL2;
  jobs[1].seed_offset = 2;
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  const auto r = FleetRunner(*experiment_, cfg).run(jobs);
  // Fully-powered baselines complete every scheduled attempt.
  EXPECT_EQ(r.aggregate.success_rate.mean(), 100.0);
}

TEST_F(FleetRunnerTest, BatchedInferenceBitIdenticalAcrossThreads) {
  // In-shard batching (batch_slots) must leave every per-job result and
  // every deterministic metric bit-identical to the unbatched run, at any
  // thread count — the fleet determinism contract with the fast path on.
  const auto run_cfg = [&](unsigned threads, int batch_slots) {
    FleetRunnerConfig cfg;
    cfg.threads = threads;
    cfg.batch_slots = batch_slots;
    return FleetRunner(*experiment_, cfg).run(small_population());
  };
  const auto base = run_cfg(1, 0);
  for (unsigned threads : {1u, 2u, 8u}) {
    const auto batched = run_cfg(threads, 16);
    SCOPED_TRACE(threads);
    ASSERT_EQ(batched.jobs.size(), base.jobs.size());
    for (std::size_t j = 0; j < base.jobs.size(); ++j) {
      EXPECT_EQ(batched.jobs[j].accuracy, base.jobs[j].accuracy);
      EXPECT_EQ(batched.jobs[j].success_rate, base.jobs[j].success_rate);
    }
    EXPECT_EQ(batched.aggregate.attempts, base.aggregate.attempts);
    EXPECT_EQ(batched.aggregate.completions, base.aggregate.completions);
    EXPECT_EQ(batched.aggregate.accuracy.mean(), base.aggregate.accuracy.mean());
    EXPECT_TRUE(
        obs::MetricsSnapshot::deterministic_equal(batched.metrics, base.metrics));
  }
}

TEST_F(FleetRunnerTest, BatchedBaselinesBitIdentical) {
  std::vector<FleetJob> jobs(4);
  jobs[0].baseline = core::BaselineKind::BL1;
  jobs[1].baseline = core::BaselineKind::BL2;
  jobs[2].baseline = core::BaselineKind::BL1;
  jobs[2].seed_offset = 5;
  jobs[3].baseline = core::BaselineKind::BL2;
  jobs[3].seed_offset = 5;
  const auto run_cfg = [&](int batch_slots) {
    FleetRunnerConfig cfg;
    cfg.threads = 2;
    cfg.keep_sim_results = true;
    cfg.batch_slots = batch_slots;
    return FleetRunner(*experiment_, cfg).run(jobs);
  };
  const auto base = run_cfg(0);
  const auto batched = run_cfg(25);  // does not divide the 120-slot stream
  ASSERT_EQ(batched.sim_results.size(), base.sim_results.size());
  for (std::size_t j = 0; j < base.sim_results.size(); ++j) {
    SCOPED_TRACE(j);
    EXPECT_EQ(batched.sim_results[j].outputs, base.sim_results[j].outputs);
    EXPECT_EQ(batched.sim_results[j].completion.attempts,
              base.sim_results[j].completion.attempts);
    EXPECT_EQ(batched.sim_results[j].completion.completions,
              base.sim_results[j].completion.completions);
    EXPECT_EQ(batched.jobs[j].accuracy, base.jobs[j].accuracy);
  }
}

TEST(FleetPopulation, DeterministicDistinctUsersAndSeeds) {
  PopulationConfig pop;
  pop.users = 8;
  pop.runs_per_user = 3;
  pop.root_seed = 7;
  const auto a = make_population(pop);
  const auto b = make_population(pop);
  ASSERT_EQ(a.size(), 24u);
  std::set<std::uint64_t> offsets;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed_offset, b[i].seed_offset);
    EXPECT_EQ(a[i].user.freq_scale, b[i].user.freq_scale);
    offsets.insert(a[i].seed_offset);
  }
  EXPECT_EQ(offsets.size(), 24u);  // every (user, run) streams independently
  // Users actually differ from each other and from the reference.
  EXPECT_NE(a[0].user.freq_scale, a[3].user.freq_scale);
  EXPECT_THROW(
      [] {
        PopulationConfig bad;
        bad.runs_per_user = 0;
        make_population(bad);
      }(),
      std::invalid_argument);
}

TEST(FleetPopulation, ZeroSeverityUsesReferenceUser) {
  PopulationConfig pop;
  pop.users = 2;
  pop.severity = 0.0;
  const auto jobs = make_population(pop);
  for (const auto& job : jobs) EXPECT_EQ(job.user.name, "reference");
}

}  // namespace
}  // namespace origin::fleet
