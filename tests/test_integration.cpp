// End-to-end integration: a miniature pipeline (small nets, few samples,
// no disk cache) through training, pruning, calibration, and the full
// simulator with every policy. Assertions are deliberately loose — they
// check mechanics and qualitative ordering, not benchmark numbers.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "nn/serialize.hpp"
#include "sim/experiment.hpp"

namespace origin {
namespace {

core::PipelineConfig tiny_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 40;
  cfg.calib_per_class = 15;
  cfg.test_per_class = 15;
  cfg.train.epochs = 6;
  cfg.train.early_stop_accuracy = 0.95;
  cfg.use_cache = false;
  cfg.seed = 777;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = tiny_pipeline();
    cfg.stream_slots = 240;
    experiment_ = new sim::Experiment(cfg);
    stream_ = new data::Stream(
        experiment_->make_stream(data::reference_user()));
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete experiment_;
    stream_ = nullptr;
    experiment_ = nullptr;
  }

  static sim::Experiment* experiment_;
  static data::Stream* stream_;
};

sim::Experiment* IntegrationTest::experiment_ = nullptr;
data::Stream* IntegrationTest::stream_ = nullptr;

TEST_F(IntegrationTest, PipelineProducesThreeModelSets) {
  const auto& sys = experiment_->system();
  for (const auto& sensor : sys.sensors) {
    EXPECT_GT(sensor.bl1.param_count(), sensor.bl2.param_count());
    EXPECT_GE(sensor.relaxed.param_count(), sensor.bl2.param_count());
    EXPECT_GT(sensor.bl1_cost.energy_j, sensor.bl2_cost.energy_j);
    EXPECT_GE(sensor.relaxed_cost.energy_j, sensor.bl2_cost.energy_j);
  }
}

TEST_F(IntegrationTest, PruningMeetsBudgets) {
  const auto& cfg = experiment_->config().pipeline;
  for (const auto& sensor : experiment_->system().sensors) {
    EXPECT_LE(sensor.bl2_cost.energy_j,
              cfg.bl2_budget_fraction * sensor.bl1_cost.energy_j * 1.001);
    EXPECT_LE(sensor.relaxed_cost.energy_j,
              cfg.relaxed_budget_fraction * sensor.bl1_cost.energy_j * 1.001);
  }
}

TEST_F(IntegrationTest, ModelsLearnSomething) {
  auto& sys = experiment_->system();
  // Even the tiny training run should clearly beat chance (1/6) on the
  // held-out test windows.
  for (int s = 0; s < data::kNumSensors; ++s) {
    const auto acc = core::per_class_accuracy(
        sys.sensors[static_cast<std::size_t>(s)].bl2,
        sys.test_sets[static_cast<std::size_t>(s)], sys.spec.num_classes());
    double mean = 0.0;
    for (double a : acc) mean += a;
    mean /= static_cast<double>(acc.size());
    EXPECT_GT(mean, 0.25) << "sensor " << s;  // chance is 1/6
  }
}

TEST_F(IntegrationTest, CalibrationArtifactsWellFormed) {
  const auto& sys = experiment_->system();
  EXPECT_EQ(sys.ranks.num_classes(), sys.spec.num_classes());
  EXPECT_EQ(sys.confidence.num_classes(), sys.spec.num_classes());
  for (int c = 0; c < sys.spec.num_classes(); ++c) {
    for (int r = 0; r < data::kNumSensors; ++r) {
      EXPECT_NO_THROW(sys.ranks.sensor_at(c, r));
    }
    for (int s = 0; s < data::kNumSensors; ++s) {
      EXPECT_GE(sys.confidence.weight(static_cast<data::SensorLocation>(s), c),
                0.0);
    }
  }
}

TEST_F(IntegrationTest, TrainedModelSerializationRoundtrip) {
  auto& sys = experiment_->system();
  const std::string blob = nn::model_to_string(sys.sensors[0].bl2);
  nn::Sequential loaded = nn::model_from_string(blob);
  const auto& sample = sys.test_sets[0][0];
  EXPECT_EQ(loaded.predict(sample.input), sys.sensors[0].bl2.predict(sample.input));
}

TEST_F(IntegrationTest, EveryPolicyRunsEndToEnd) {
  for (auto kind : {sim::PolicyKind::Naive, sim::PolicyKind::PlainRR,
                    sim::PolicyKind::AAS, sim::PolicyKind::AASR,
                    sim::PolicyKind::Origin}) {
    auto policy = experiment_->make_policy(kind, 12);
    const auto result = experiment_->run_policy(*policy, *stream_);
    EXPECT_EQ(result.outputs.size(), stream_->slots.size()) << policy->name();
    EXPECT_GT(result.accuracy.overall(), 0.0) << policy->name();
  }
}

TEST_F(IntegrationTest, BaselinesRunEndToEnd) {
  const auto bl1 = experiment_->run_fully_powered(core::BaselineKind::BL1, *stream_);
  const auto bl2 = experiment_->run_fully_powered(core::BaselineKind::BL2, *stream_);
  EXPECT_GT(bl1.accuracy.overall(), 0.2);
  EXPECT_GT(bl2.accuracy.overall(), 0.2);
}

TEST_F(IntegrationTest, SchedulingBeatsNaive) {
  auto naive = experiment_->make_policy(sim::PolicyKind::Naive, 3);
  auto origin = experiment_->make_policy(sim::PolicyKind::Origin, 12);
  const auto rn = experiment_->run_policy(*naive, *stream_);
  const auto ro = experiment_->run_policy(*origin, *stream_);
  EXPECT_GT(ro.accuracy.overall(), rn.accuracy.overall());
  EXPECT_GT(ro.completion.attempt_success_rate(),
            rn.completion.attempt_success_rate());
}

TEST_F(IntegrationTest, RelaxedModelSetRuns) {
  auto policy = experiment_->make_policy(sim::PolicyKind::Origin, 12,
                                         sim::ModelSet::Relaxed);
  const auto r =
      experiment_->run_policy(*policy, *stream_, sim::ModelSet::Relaxed);
  EXPECT_EQ(r.outputs.size(), stream_->slots.size());
}

TEST_F(IntegrationTest, AdaptiveConfidenceUpdatesDuringRun) {
  auto policy = experiment_->make_policy(sim::PolicyKind::Origin, 12);
  auto* origin = static_cast<core::OriginPolicy*>(policy.get());
  const core::ConfidenceMatrix before = origin->confidence();
  experiment_->run_policy(*policy, *stream_);
  EXPECT_GT(origin->confidence().distance(before), 0.0);
}

}  // namespace
}  // namespace origin
