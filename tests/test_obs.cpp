// Observability layer tests: metric shards merge deterministically (the
// FleetAccumulator contract), histogram bucket edges follow the documented
// v <= bound rule, the trace ring buffer wraps with an exact drop count,
// the sinks emit the golden JSON shapes, and concurrent recording into one
// recorder / many shards is race-free (this suite carries the fleet/obs
// labels so it runs under the TSan gate: ctest -L obs).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/digest.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

namespace origin::obs {
namespace {

// ----------------------------------------------------------------- metrics

TEST(MetricsRegistry, SchemaAndLookup) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("jobs");
  const auto g = reg.add_gauge("depth");
  const auto h = reg.add_histogram("latency", {1.0, 2.0, 4.0}, false);
  EXPECT_EQ(reg.defs().size(), 3u);
  EXPECT_EQ(reg.find("jobs"), c);
  EXPECT_EQ(reg.find("depth"), g);
  EXPECT_EQ(reg.find("latency"), h);
  EXPECT_THROW(reg.find("missing"), std::out_of_range);
  EXPECT_TRUE(reg.defs()[c].deterministic);   // counter default
  EXPECT_FALSE(reg.defs()[g].deterministic);  // gauge default
}

TEST(MetricsRegistry, RejectsBadHistogramBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.add_histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(reg.add_histogram("h", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.add_histogram("h", {1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, BoundsGenerators) {
  const auto exp = MetricsRegistry::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const auto lin = MetricsRegistry::linear_bounds(5.0, 5.0, 20);
  ASSERT_EQ(lin.size(), 20u);
  EXPECT_DOUBLE_EQ(lin[0], 5.0);
  EXPECT_DOUBLE_EQ(lin[19], 100.0);
}

TEST(MetricsShard, KindMismatchThrows) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("c");
  const auto g = reg.add_gauge("g");
  auto shard = reg.make_shard();
  EXPECT_THROW(shard.observe(c, 1.0), std::logic_error);
  EXPECT_THROW(shard.inc(g), std::logic_error);
  EXPECT_THROW(shard.set(c, 1.0), std::logic_error);
}

// A value lands in the first bucket with v <= bound; above the last finite
// bound it lands in the implicit +inf bucket.
TEST(MetricsShard, HistogramBucketEdges) {
  MetricsRegistry reg;
  const auto h = reg.add_histogram("h", {1.0, 2.0, 4.0});
  auto shard = reg.make_shard();
  shard.observe(h, 0.5);   // bucket 0
  shard.observe(h, 1.0);   // bucket 0 (boundary is inclusive)
  shard.observe(h, 1.5);   // bucket 1
  shard.observe(h, 4.0);   // bucket 2
  shard.observe(h, 4.001); // +inf bucket
  const HistogramCell& cell = shard.histogram(h);
  ASSERT_EQ(cell.buckets.size(), 4u);
  EXPECT_EQ(cell.buckets[0], 2u);
  EXPECT_EQ(cell.buckets[1], 1u);
  EXPECT_EQ(cell.buckets[2], 1u);
  EXPECT_EQ(cell.buckets[3], 1u);
  EXPECT_EQ(cell.count, 5u);
  EXPECT_DOUBLE_EQ(cell.min, 0.5);
  EXPECT_DOUBLE_EQ(cell.max, 4.001);
  EXPECT_DOUBLE_EQ(cell.sum, 0.5 + 1.0 + 1.5 + 4.0 + 4.001);
}

TEST(MetricsShard, MergeIsCommutativeForCountersAndHistograms) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("c");
  const auto h = reg.add_histogram("h", {1.0, 2.0});
  auto a = reg.make_shard();
  auto b = reg.make_shard();
  a.inc(c, 3);
  a.observe(h, 0.5);
  a.observe(h, 1.5);
  b.inc(c, 4);
  b.observe(h, 3.0);

  auto ab = reg.make_shard();
  ab.merge(a);
  ab.merge(b);
  auto ba = reg.make_shard();
  ba.merge(b);
  ba.merge(a);

  EXPECT_EQ(ab.counter(c), 7u);
  EXPECT_EQ(ba.counter(c), ab.counter(c));
  EXPECT_EQ(ab.histogram(h).buckets, ba.histogram(h).buckets);
  EXPECT_EQ(ab.histogram(h).count, ba.histogram(h).count);
  EXPECT_DOUBLE_EQ(ab.histogram(h).min, ba.histogram(h).min);
  EXPECT_DOUBLE_EQ(ab.histogram(h).max, ba.histogram(h).max);
}

TEST(MetricsShard, GaugeLaterSetWinsAndSetMax) {
  MetricsRegistry reg;
  const auto g = reg.add_gauge("g");
  auto a = reg.make_shard();
  auto b = reg.make_shard();
  a.set(g, 1.0);
  b.set(g, 2.0);
  // Shard-index order: b is later, so its set wins the fold.
  const auto merged = merge_in_order({a, b});
  EXPECT_DOUBLE_EQ(merged.gauge(g).value, 2.0);
  // An unset shard must not clobber a set one.
  const auto merged2 = merge_in_order({a, reg.make_shard()});
  EXPECT_DOUBLE_EQ(merged2.gauge(g).value, 1.0);

  auto m = reg.make_shard();
  m.set_max(g, 3.0);
  m.set_max(g, 1.0);
  EXPECT_DOUBLE_EQ(m.gauge(g).value, 3.0);
}

// The fleet determinism contract in miniature: the same recordings split
// across shard layouts fold to bit-identical deterministic metrics.
TEST(MetricsShard, ShardLayoutInvariance) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("c");
  const auto h = reg.add_histogram("h", {10.0, 20.0, 30.0});
  const std::vector<double> values = {3.0, 17.0, 25.0, 8.0, 40.0, 12.0};

  // Layout A: one shard per value; layout B: two shards of three.
  std::vector<MetricsShard> a, b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    a.push_back(reg.make_shard());
    a.back().inc(c);
    a.back().observe(h, values[i]);
  }
  for (std::size_t s = 0; s < 2; ++s) {
    b.push_back(reg.make_shard());
    for (std::size_t i = 3 * s; i < 3 * (s + 1); ++i) {
      b.back().inc(c);
      b.back().observe(h, values[i]);
    }
  }
  const auto sa = snapshot(reg, merge_in_order(a));
  const auto sb = snapshot(reg, merge_in_order(b));
  EXPECT_TRUE(MetricsSnapshot::deterministic_equal(sa, sb));
  EXPECT_EQ(sa.to_json(), sb.to_json());
}

TEST(MetricsSnapshot, DeterministicEqualIgnoresWallClockMetrics) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("jobs");
  const auto w = reg.add_histogram("seconds", {1.0}, false);
  auto a = reg.make_shard();
  auto b = reg.make_shard();
  a.inc(c, 5);
  a.observe(w, 0.5);
  b.inc(c, 5);
  b.observe(w, 2.0);  // different wall-clock observation
  const auto sa = snapshot(reg, a);
  const auto sb = snapshot(reg, b);
  EXPECT_TRUE(MetricsSnapshot::deterministic_equal(sa, sb));

  b.inc(c);  // now a deterministic counter diverges
  EXPECT_FALSE(
      MetricsSnapshot::deterministic_equal(sa, snapshot(reg, b)));
}

TEST(MetricsSnapshot, JsonContainsEveryMetric) {
  MetricsRegistry reg;
  reg.add_counter("fleet.jobs");
  reg.add_gauge("pool.depth");
  reg.add_histogram("fleet.job_seconds", {1.0, 2.0}, false);
  auto shard = reg.make_shard();
  shard.inc(reg.find("fleet.jobs"), 2);
  const std::string json = snapshot(reg, shard).to_json();
  EXPECT_NE(json.find("\"fleet.jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet.job_seconds\""), std::string::npos);
}

// --------------------------------------------------------------- quantiles

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  const HistogramCell cell{.buckets = {0, 0, 0}, .count = 0};
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, bounds, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, bounds, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, bounds, 1.0), 0.0);
}

TEST(HistogramQuantile, AllInInfBucketClampsToObservedMax) {
  MetricsRegistry reg;
  const auto h = reg.add_histogram("h", {1.0, 2.0});
  auto shard = reg.make_shard();
  shard.observe(h, 10.0);
  shard.observe(h, 20.0);
  shard.observe(h, 30.0);
  const HistogramCell& cell = shard.histogram(h);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0}, q), 30.0) << q;
  }
}

TEST(HistogramQuantile, SingleBucketInterpolatesFromZero) {
  MetricsRegistry reg;
  const auto h = reg.add_histogram("h", {8.0});
  auto shard = reg.make_shard();
  for (int i = 0; i < 4; ++i) shard.observe(h, 1.0);
  const HistogramCell& cell = shard.histogram(h);
  // All mass in [0, 8]: the estimate interpolates linearly across it.
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {8.0}, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {8.0}, 0.25), 2.0);
}

TEST(HistogramQuantile, ExactBoundaryAndClampedExtremes) {
  MetricsRegistry reg;
  const auto h = reg.add_histogram("h", {1.0, 2.0, 4.0});
  auto shard = reg.make_shard();
  shard.observe(h, 0.5);
  shard.observe(h, 1.0);  // boundary value lands in bucket 0 (v <= bound)
  shard.observe(h, 1.5);
  shard.observe(h, 3.0);
  const HistogramCell& cell = shard.histogram(h);
  // rank(0.5) = 2 falls exactly on bucket 0's cumulative edge: the
  // estimate is that bucket's upper bound, not bucket 1 territory.
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0, 4.0}, 0.5), 1.0);
  // q <= 0 / q >= 1 clamp to the observed extremes, not bucket edges.
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0, 4.0}, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0, 4.0}, -1.0), 0.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0, 4.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(cell, {1.0, 2.0, 4.0}, 2.0), 3.0);
}

TEST(HistogramQuantile, BatchFormMatchesSingleCalls) {
  MetricsRegistry reg;
  const auto h = reg.add_histogram("h", {1.0, 2.0, 4.0, 8.0});
  auto shard = reg.make_shard();
  for (double v : {0.2, 0.9, 1.7, 3.1, 5.0, 7.7, 12.0}) shard.observe(h, v);
  const HistogramCell& cell = shard.histogram(h);
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  const std::vector<double> qs = {0.0, 0.5, 0.95, 0.99, 1.0};
  const auto batch = histogram_quantiles(cell, bounds, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], histogram_quantile(cell, bounds, qs[i])) << i;
  }
  EXPECT_TRUE(histogram_quantiles(cell, bounds, {}).empty());
}

// ----------------------------------------------------------------- digest

TEST(StreamingDigest, ValidatesTargets) {
  EXPECT_THROW(StreamingDigest(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(StreamingDigest({0.0}), std::invalid_argument);
  EXPECT_THROW(StreamingDigest({1.0}), std::invalid_argument);
  StreamingDigest d({0.5});
  EXPECT_THROW(d.quantile(0.99), std::out_of_range);
}

TEST(StreamingDigest, EmptyAndSmallCountsAreExact) {
  StreamingDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);

  d.observe(3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  d.observe(1.0);
  d.observe(2.0);
  // Below five samples the estimate is an exact sorted-buffer lookup.
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(StreamingDigest, TracksQuantilesOfALargeStream) {
  // Deterministic pseudo-random stream in [0, 1): the P-squared estimates
  // must land near the true quantiles.
  StreamingDigest d;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    d.observe(static_cast<double>(x % 100000u) / 100000.0);
  }
  EXPECT_EQ(d.count(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(d.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(d.quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(d.quantile(0.99), 0.99, 0.02);
  EXPECT_NEAR(d.mean(), 0.5, 0.02);
  EXPECT_GE(d.quantile(0.99), d.quantile(0.95));
  EXPECT_GE(d.quantile(0.95), d.quantile(0.5));
  EXPECT_LE(d.max(), 1.0);
  EXPECT_GE(d.min(), 0.0);
}

// ------------------------------------------------------------- prometheus

TEST(Prometheus, ExposesCountersGaugesAndHistograms) {
  MetricsRegistry reg;
  const auto c = reg.add_counter("serve.slots.served");
  const auto g = reg.add_gauge("pool.depth");
  const auto unset = reg.add_gauge("pool.idle");
  const auto h = reg.add_histogram("serve.step_seconds", {0.5, 1.0});
  auto shard = reg.make_shard();
  shard.inc(c, 42);
  shard.set(g, 3.0);
  (void)unset;
  shard.observe(h, 0.25);
  shard.observe(h, 0.75);
  shard.observe(h, 9.0);
  const std::string text = prometheus_text(snapshot(reg, shard));

  // Counters: sanitized name + _total suffix.
  EXPECT_NE(text.find("# TYPE serve_slots_served_total counter\n"
                      "serve_slots_served_total 42\n"),
            std::string::npos);
  // Gauges: set ones exposed, unset ones skipped entirely.
  EXPECT_NE(text.find("# TYPE pool_depth gauge\npool_depth 3\n"),
            std::string::npos);
  EXPECT_EQ(text.find("pool_idle"), std::string::npos);
  // Histograms: cumulative buckets ending at +Inf == _count, plus
  // _sum/_count.
  EXPECT_NE(text.find("serve_step_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_step_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_step_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_step_seconds_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("serve_step_seconds_count 3\n"), std::string::npos);
}

TEST(Prometheus, TextFormatIsStructurallyValid) {
  // Every non-comment line must be `name{labels} value` or `name value`
  // with a sanitized metric name — the shape a scraper parses.
  MetricsRegistry reg;
  reg.add_counter("serve.sessions.admitted");
  reg.add_histogram("fleet.job-seconds", {1e-3, 1e-2});
  auto shard = reg.make_shard();
  shard.inc(reg.find("serve.sessions.admitted"), 7);
  shard.observe(reg.find("fleet.job-seconds"), 5e-3);
  const std::string text = prometheus_text(snapshot(reg, shard));
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    for (char ch : name.substr(0, name.find('{'))) {
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
      EXPECT_TRUE(ok) << "bad metric-name char '" << ch << "' in " << line;
    }
    // The value must parse as a number.
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

// ------------------------------------------------------------------- trace

TEST(TraceRecorder, RingBufferWrapsWithDropCount) {
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.mark(static_cast<double>(i), "m" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two were overwritten; survivors come back oldest-first.
  EXPECT_EQ(events.front().label, "m2");
  EXPECT_EQ(events.back().label, "m5");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, TypedHelpersFillTheDocumentedFields) {
  TraceRecorder rec;
  rec.schedule(7, 3.5, 0.5, {2, 0}, 1);
  rec.attempt(7, 3.5, 0.5, 2, AttemptOutcome::DiedMidway, -1, 0.0, 0.01);
  rec.output(7, 3.5, 0.5, 4, 4);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::Schedule);
  EXPECT_EQ(events[0].label, "s2,s0");
  EXPECT_EQ(events[0].count, 1);  // fallback hops
  EXPECT_EQ(events[1].outcome,
            static_cast<std::uint8_t>(AttemptOutcome::DiedMidway));
  EXPECT_TRUE(events[2].flag);  // correct output
  EXPECT_EQ(events[2].cls, 4);
}

TEST(JsonlSink, GoldenOutput) {
  TraceRecorder rec;
  rec.output(0, 0.5, 0.5, 2, 2);
  std::ostringstream os;
  JsonlSink{}.write(rec.events(), rec.dropped(), os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"header\",\"events\":1,\"dropped\":0}\n"
            "{\"kind\":\"output\",\"slot\":0,\"t0_s\":0.5,\"dur_s\":0.5,"
            "\"predicted\":2,\"truth\":2,\"correct\":true}\n");
}

TEST(ChromeTraceSink, GoldenOutput) {
  TraceRecorder rec;
  rec.output(0, 0.5, 0.5, 2, 2);
  std::ostringstream os;
  ChromeTraceSink{}.write(rec.events(), rec.dropped(), os);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ms\",\"origin_dropped_events\":0,"
      "\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"simulator\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":102,"
      "\"args\":{\"name\":\"output\"}},"
      "{\"name\":\"correct\",\"ph\":\"X\",\"pid\":1,\"tid\":102,"
      "\"ts\":500000,\"dur\":500000,"
      "\"args\":{\"slot\":0,\"predicted\":2,\"truth\":2}}"
      "]}\n");
}

TEST(ChromeTraceSink, EnergyBecomesCounterSeries) {
  TraceRecorder rec;
  rec.energy(0, 0.0, 1, 0.25, 0.1);
  std::ostringstream os;
  ChromeTraceSink{}.write(rec.events(), rec.dropped(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"stored_j.sensor1\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceMacro, NullRecorderIsANoOp) {
  TraceRecorder* recorder = nullptr;
  // Must not crash; with ORIGIN_TRACE=OFF this is compiled out entirely.
  ORIGIN_TRACE(recorder, mark(0.0, "never"));
  TraceRecorder rec;
  recorder = &rec;
  ORIGIN_TRACE(recorder, mark(1.0, "once"));
  if (kTraceEnabled) {
    EXPECT_EQ(rec.size(), 1u);
  } else {
    EXPECT_EQ(rec.size(), 0u);
  }
}

// ---------------------------------------------------------------- manifest

TEST(RunManifest, CapturesBuildInfoAndParams) {
  RunManifest m("test_tool");
  m.set("seed", std::uint64_t{42});
  m.set("seed", std::uint64_t{43});  // dedupe by key: last write wins
  m.set("policy", "origin");
  m.set_wall_seconds(1.5);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"tool\":\"test_tool\""), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"origin\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"43\""), std::string::npos);
  EXPECT_EQ(json.find("\"seed\":\"42\""), std::string::npos);

  // Metrics splice stays a single valid object with a "metrics" key.
  MetricsRegistry reg;
  reg.add_counter("c");
  const auto snap = snapshot(reg, reg.make_shard());
  const std::string with_metrics = m.to_json(&snap);
  EXPECT_NE(with_metrics.find("\"metrics\":"), std::string::npos);
  EXPECT_EQ(with_metrics.back(), '}');
}

// -------------------------------------------------------------- concurrency

// Run under TSan via the obs/fleet ctest labels: many threads hammer one
// recorder and private metric shards; totals must be exact.
TEST(ObsConcurrency, ParallelRecordingIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  TraceRecorder rec(1024);  // forces wrap: drops must be counted exactly
  MetricsRegistry reg;
  const auto c = reg.add_counter("events");
  const auto h = reg.add_histogram("value", {250.0, 500.0, 750.0});
  std::vector<MetricsShard> shards;
  for (int t = 0; t < kThreads; ++t) shards.push_back(reg.make_shard());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.mark(static_cast<double>(i), "t" + std::to_string(t));
        shards[static_cast<std::size_t>(t)].inc(c);
        shards[static_cast<std::size_t>(t)].observe(
            h, static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rec.size() + rec.dropped(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const auto merged = merge_in_order(shards);
  EXPECT_EQ(merged.counter(c),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(merged.histogram(h).count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace origin::obs
