#include "core/rank_table.hpp"

#include <gtest/gtest.h>

namespace origin::core {
namespace {

using data::SensorLocation;

TEST(RankTable, ConstructorValidation) {
  EXPECT_THROW(RankTable(0), std::invalid_argument);
  EXPECT_NO_THROW(RankTable(6));
}

TEST(RankTable, DefaultIsIdentity) {
  RankTable t(3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(t.sensor_at(c, 0), SensorLocation::Chest);
    EXPECT_EQ(t.sensor_at(c, 1), SensorLocation::LeftAnkle);
    EXPECT_EQ(t.sensor_at(c, 2), SensorLocation::RightWrist);
  }
}

TEST(RankTable, FromAccuracyOrdersDescending) {
  std::array<std::vector<double>, 3> acc;
  acc[0] = {0.5, 0.9};  // chest
  acc[1] = {0.8, 0.7};  // ankle
  acc[2] = {0.6, 0.95};  // wrist
  const auto t = RankTable::from_accuracy(acc);
  EXPECT_EQ(t.sensor_at(0, 0), SensorLocation::LeftAnkle);
  EXPECT_EQ(t.sensor_at(0, 1), SensorLocation::RightWrist);
  EXPECT_EQ(t.sensor_at(0, 2), SensorLocation::Chest);
  EXPECT_EQ(t.sensor_at(1, 0), SensorLocation::RightWrist);
  EXPECT_EQ(t.sensor_at(1, 1), SensorLocation::Chest);
}

TEST(RankTable, TieBreaksByLowerIndex) {
  std::array<std::vector<double>, 3> acc;
  acc[0] = {0.8};
  acc[1] = {0.8};
  acc[2] = {0.8};
  const auto t = RankTable::from_accuracy(acc);
  EXPECT_EQ(t.sensor_at(0, 0), SensorLocation::Chest);
  EXPECT_EQ(t.sensor_at(0, 1), SensorLocation::LeftAnkle);
  EXPECT_EQ(t.sensor_at(0, 2), SensorLocation::RightWrist);
}

TEST(RankTable, FromAccuracyValidation) {
  std::array<std::vector<double>, 3> ragged;
  ragged[0] = {0.5, 0.6};
  ragged[1] = {0.5};
  ragged[2] = {0.5, 0.6};
  EXPECT_THROW(RankTable::from_accuracy(ragged), std::invalid_argument);
  std::array<std::vector<double>, 3> empty;
  EXPECT_THROW(RankTable::from_accuracy(empty), std::invalid_argument);
}

TEST(RankTable, RankOfIsInverseOfSensorAt) {
  std::array<std::vector<double>, 3> acc;
  acc[0] = {0.3, 0.8, 0.1};
  acc[1] = {0.9, 0.2, 0.5};
  acc[2] = {0.6, 0.5, 0.9};
  const auto t = RankTable::from_accuracy(acc);
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < data::kNumSensors; ++r) {
      EXPECT_EQ(t.rank_of(c, t.sensor_at(c, r)), r);
    }
  }
}

TEST(RankTable, OrderReturnsFullPermutation) {
  RankTable t(2);
  const auto order = t.order(1);
  std::array<bool, 3> seen{};
  for (auto s : order) seen[static_cast<std::size_t>(s)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(RankTable, SetOrderValidatesPermutation) {
  RankTable t(2);
  t.set_order(0, {SensorLocation::RightWrist, SensorLocation::Chest,
                  SensorLocation::LeftAnkle});
  EXPECT_EQ(t.sensor_at(0, 0), SensorLocation::RightWrist);
  EXPECT_THROW(
      t.set_order(0, {SensorLocation::Chest, SensorLocation::Chest,
                      SensorLocation::LeftAnkle}),
      std::invalid_argument);
  EXPECT_THROW(t.set_order(5, {SensorLocation::Chest, SensorLocation::LeftAnkle,
                               SensorLocation::RightWrist}),
               std::out_of_range);
}

TEST(RankTable, BoundsChecking) {
  RankTable t(2);
  EXPECT_THROW(t.sensor_at(-1, 0), std::out_of_range);
  EXPECT_THROW(t.sensor_at(2, 0), std::out_of_range);
  EXPECT_THROW(t.sensor_at(0, 3), std::out_of_range);
  EXPECT_THROW(t.rank_of(9, SensorLocation::Chest), std::out_of_range);
}

}  // namespace
}  // namespace origin::core
