#include "nn/energy_model.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

Sequential net(int hidden, std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(2, hidden, 3, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Flatten>()
      .emplace<Dense>(hidden * 5, 3, rng);
  return m;
}

TEST(EnergyModel, CostIsPositive) {
  auto m = net(4, 1);
  const auto cost = estimate_cost(m, {2, 12});
  EXPECT_GT(cost.energy_j, 0.0);
  EXPECT_GT(cost.latency_s, 0.0);
  EXPECT_GT(cost.macs, 0u);
  EXPECT_GT(cost.param_accesses, 0u);
  EXPECT_GT(cost.activation_accesses, 0u);
}

TEST(EnergyModel, BiggerNetCostsMore) {
  auto small = net(2, 2);
  auto big = net(16, 3);
  const auto cs = estimate_cost(small, {2, 12});
  const auto cb = estimate_cost(big, {2, 12});
  EXPECT_GT(cb.energy_j, cs.energy_j);
  EXPECT_GT(cb.latency_s, cs.latency_s);
  EXPECT_GT(cb.macs, cs.macs);
}

TEST(EnergyModel, MacsMatchModel) {
  auto m = net(4, 4);
  const auto cost = estimate_cost(m, {2, 12});
  EXPECT_EQ(cost.macs, m.total_macs({2, 12}));
}

TEST(EnergyModel, ParamAccessesEqualParamCount) {
  auto m = net(4, 5);
  const auto cost = estimate_cost(m, {2, 12});
  EXPECT_EQ(cost.param_accesses, m.param_count());
}

TEST(EnergyModel, OverheadDominatesEmptyModel) {
  Sequential empty;
  ComputeProfile profile;
  const auto cost = estimate_cost(empty, {4});
  EXPECT_DOUBLE_EQ(cost.energy_j, profile.inference_overhead_j);
  EXPECT_DOUBLE_EQ(cost.latency_s, profile.inference_overhead_s);
}

TEST(EnergyModel, ProfileScalesEnergy) {
  auto m = net(4, 6);
  ComputeProfile cheap;
  ComputeProfile expensive = cheap;
  expensive.energy_per_mac_j *= 10.0;
  const auto c1 = estimate_cost(m, {2, 12}, cheap);
  const auto c2 = estimate_cost(m, {2, 12}, expensive);
  EXPECT_GT(c2.energy_j, c1.energy_j);
  EXPECT_DOUBLE_EQ(c2.latency_s, c1.latency_s);  // latency unaffected by energy
}

TEST(EnergyModel, ContinuousPower) {
  InferenceCost cost;
  cost.energy_j = 10e-6;
  cost.latency_s = 0.1;
  EXPECT_DOUBLE_EQ(continuous_power_w(cost), 1e-4);
  cost.latency_s = 0.0;
  EXPECT_THROW(continuous_power_w(cost), std::invalid_argument);
}

TEST(EnergyModel, DutyCycledPower) {
  InferenceCost cost;
  cost.energy_j = 6e-6;
  EXPECT_DOUBLE_EQ(duty_cycled_power_w(cost, 3.0), 2e-6);
  EXPECT_THROW(duty_cycled_power_w(cost, 0.0), std::invalid_argument);
}

TEST(EnergyModel, DutyCyclingReducesPower) {
  auto m = net(4, 7);
  const auto cost = estimate_cost(m, {2, 12});
  EXPECT_LT(duty_cycled_power_w(cost, 6.0), continuous_power_w(cost));
}

}  // namespace
}  // namespace origin::nn
