#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace origin::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {10.0, 20.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(RunningStats, MergeCommutes) {
  // Parallel-combination requirement: a ⊕ b and b ⊕ a agree (to rounding)
  // in every moment, so shard merge order only affects the last bits.
  RunningStats a, b;
  for (double x : {0.5, 1.5, 2.5, 100.0}) a.add(x);
  for (double x : {-3.0, 7.0}) b.add(x);
  RunningStats ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
}

TEST(RunningStats, MergeOneSidedCopiesExactly) {
  // Merging into an empty accumulator must reproduce the source exactly
  // (bitwise), including min/max — the "first shard" case of a fold.
  RunningStats src, dst;
  for (double x : {2.0, 9.0, -4.0}) src.add(x);
  dst.merge(src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.mean(), src.mean());
  EXPECT_EQ(dst.variance(), src.variance());
  EXPECT_EQ(dst.min(), src.min());
  EXPECT_EQ(dst.max(), src.max());
}

TEST(RunningStats, MergeManyShardsMatchesSequential) {
  // Fold 100 values split across 7 uneven shards; the merged moments must
  // match a single sequential pass to floating-point noise.
  RunningStats sequential;
  std::vector<RunningStats> shards(7);
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 11.0 + (i % 5);
    sequential.add(x);
    shards[static_cast<std::size_t>((i * i) % 7)].add(x);
  }
  RunningStats merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, MeanVarianceVectors) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(stddev({1.0, 3.0}), 1.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Stats, PercentileClampsP) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Stats, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, ProbabilityVectorVarianceExtremes) {
  // One-hot = maximal confidence; uniform = zero variance (max confusion).
  const double onehot = probability_vector_variance({1.0f, 0.0f, 0.0f, 0.0f});
  const double uniform =
      probability_vector_variance({0.25f, 0.25f, 0.25f, 0.25f});
  EXPECT_GT(onehot, uniform);
  EXPECT_DOUBLE_EQ(uniform, 0.0);
  // Analytic: mean 0.25, var = (0.75^2 + 3*0.25^2)/4
  EXPECT_NEAR(onehot, (0.75 * 0.75 + 3 * 0.0625) / 4.0, 1e-9);
}

TEST(Stats, ProbabilityVectorVarianceOrdering) {
  // Sharper distributions must rank higher (the paper's §III-C example).
  const double sharp = probability_vector_variance({0.94f, 0.01f, 0.02f, 0.01f});
  const double soft = probability_vector_variance({0.80f, 0.05f, 0.08f, 0.07f});
  EXPECT_GT(sharp, soft);
}

TEST(Stats, ProbabilityVectorVarianceEmpty) {
  EXPECT_DOUBLE_EQ(probability_vector_variance({}), 0.0);
}

TEST(Stats, ArgmaxBasics) {
  EXPECT_EQ(argmax(std::vector<float>{1.0f, 5.0f, 3.0f}), 1u);
  EXPECT_EQ(argmax(std::vector<double>{-1.0, -5.0, -0.5}), 2u);
  EXPECT_EQ(argmax(std::vector<float>{}), 0u);
  // First max wins on ties.
  EXPECT_EQ(argmax(std::vector<float>{2.0f, 2.0f}), 0u);
}

}  // namespace
}  // namespace origin::util
