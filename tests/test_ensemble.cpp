#include "core/ensemble.hpp"

#include <gtest/gtest.h>

namespace origin::core {
namespace {

TEST(Majority, EmptyIsNullopt) {
  EXPECT_FALSE(majority_vote({}, 3).has_value());
  EXPECT_FALSE(weighted_majority_vote({}, 3).has_value());
}

TEST(Majority, SimpleMajority) {
  const std::vector<Ballot> b = {{1, 1.0, 0}, {1, 1.0, 1}, {2, 1.0, 2}};
  EXPECT_EQ(majority_vote(b, 3).value(), 1);
}

TEST(Majority, Unanimous) {
  const std::vector<Ballot> b = {{0, 1.0, 0}, {0, 1.0, 1}, {0, 1.0, 2}};
  EXPECT_EQ(majority_vote(b, 2).value(), 0);
}

TEST(Majority, ThreeWayTieGoesToLowestPriority) {
  const std::vector<Ballot> b = {{0, 1.0, 2.0}, {1, 1.0, 0.5}, {2, 1.0, 1.0}};
  EXPECT_EQ(majority_vote(b, 3).value(), 1);
}

TEST(Majority, SingleBallotWins) {
  const std::vector<Ballot> b = {{4, 1.0, 0}};
  EXPECT_EQ(majority_vote(b, 6).value(), 4);
}

TEST(Majority, Validation) {
  EXPECT_THROW(majority_vote({{3, 1.0, 0}}, 3), std::invalid_argument);
  EXPECT_THROW(majority_vote({{-1, 1.0, 0}}, 3), std::invalid_argument);
  EXPECT_THROW(majority_vote({{0, -1.0, 0}}, 3), std::invalid_argument);
  EXPECT_THROW(majority_vote({}, 0), std::invalid_argument);
}

TEST(Weighted, HeavierClassWins) {
  const std::vector<Ballot> b = {{0, 0.3, 0}, {1, 0.5, 1}, {0, 0.1, 2}};
  EXPECT_EQ(weighted_majority_vote(b, 2).value(), 1);
}

TEST(Weighted, SumBeatsSingleHeavy) {
  const std::vector<Ballot> b = {{0, 0.4, 0}, {1, 0.3, 1}, {1, 0.3, 2}};
  EXPECT_EQ(weighted_majority_vote(b, 2).value(), 1);
}

TEST(Weighted, ExactTieResolvedByHeaviestBallot) {
  // totals equal (0.5 vs 0.5) but class 1 has the single heaviest ballot.
  const std::vector<Ballot> b = {{0, 0.25, 0}, {0, 0.25, 1}, {1, 0.5, 2}};
  EXPECT_EQ(weighted_majority_vote(b, 2).value(), 1);
}

TEST(Weighted, FullTieFallsBackToPriority) {
  const std::vector<Ballot> b = {{0, 0.5, 5.0}, {1, 0.5, 1.0}};
  EXPECT_EQ(weighted_majority_vote(b, 2).value(), 1);
}

TEST(Weighted, ZeroWeightsStillProduceWinner) {
  const std::vector<Ballot> b = {{2, 0.0, 1.0}, {0, 0.0, 0.5}};
  const auto w = weighted_majority_vote(b, 3);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w.value(), 0);  // tie at 0 weight -> priority
}

// Property sweep: with all weights equal, weighted voting must agree with
// unweighted majority voting on every configuration of 3 ballots.
class VoteEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(VoteEquivalence, WeightedDegeneratesToMajority) {
  const auto [a, b, c] = GetParam();
  std::vector<Ballot> ballots = {
      {a, 1.0, 0.0}, {b, 1.0, 1.0}, {c, 1.0, 2.0}};
  const auto plain = majority_vote(ballots, 4);
  const auto weighted = weighted_majority_vote(ballots, 4);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(weighted.has_value());
  // With equal weights the winning *count* must match; tie-break rules may
  // differ only when every class has one ballot — in that case both fall
  // back to the lowest tie_priority ballot, which is also identical.
  EXPECT_EQ(plain.value(), weighted.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllThreeBallotCombos, VoteEquivalence,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4),
                       ::testing::Range(0, 4)));

// Property: the majority winner never has fewer votes than any other class.
class MajorityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MajorityProperty, WinnerHasMaximalCount) {
  const int seed = GetParam();
  std::vector<Ballot> ballots;
  int x = seed;
  for (int i = 0; i < 5; ++i) {
    x = (x * 1103515245 + 12345) & 0x7fffffff;
    ballots.push_back({x % 6, 1.0, static_cast<double>(i)});
  }
  const int winner = majority_vote(ballots, 6).value();
  std::vector<int> counts(6, 0);
  for (const auto& b : ballots) ++counts[static_cast<std::size_t>(b.cls)];
  for (int c = 0; c < 6; ++c) {
    EXPECT_LE(counts[static_cast<std::size_t>(c)],
              counts[static_cast<std::size_t>(winner)]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBallots, MajorityProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace origin::core
