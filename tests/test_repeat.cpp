#include "sim/repeat.hpp"

#include <gtest/gtest.h>

namespace origin::sim {
namespace {

struct RunningStatsPair {
  util::RunningStats accuracy;
  util::RunningStats success;
};

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class RepeatTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 120;
    experiment_ = new Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }
  static Experiment* experiment_;
};

Experiment* RepeatTest::experiment_ = nullptr;

TEST_F(RepeatTest, AggregatesRequestedRuns) {
  const auto r = repeat_policy_runs(*experiment_, PolicyKind::PlainRR, 6, 3);
  EXPECT_EQ(r.accuracy.count(), 3u);
  EXPECT_EQ(r.success_rate.count(), 3u);
  EXPECT_GE(r.accuracy.mean(), 0.0);
  EXPECT_LE(r.accuracy.mean(), 1.0);
}

TEST_F(RepeatTest, SeedsActuallyVary) {
  const auto r = repeat_policy_runs(*experiment_, PolicyKind::PlainRR, 6, 4);
  // Independent streams: the per-run accuracies should not all coincide.
  EXPECT_GT(r.accuracy.max() - r.accuracy.min(), 0.0);
}

TEST_F(RepeatTest, BaselineRunsAggregate) {
  const auto r = repeat_baseline_runs(*experiment_, core::BaselineKind::BL2, 2);
  EXPECT_EQ(r.accuracy.count(), 2u);
  EXPECT_DOUBLE_EQ(r.success_rate.mean(), 100.0);
}

TEST_F(RepeatTest, PercentHelpers) {
  const auto r = repeat_policy_runs(*experiment_, PolicyKind::AAS, 6, 2);
  EXPECT_NEAR(r.mean_accuracy_pct(), 100.0 * r.accuracy.mean(), 1e-9);
  EXPECT_GE(r.stddev_accuracy_pct(), 0.0);
}

TEST_F(RepeatTest, MatchesHistoricalSequentialLoopBitForBit) {
  // The pre-fleet implementation: a sequential loop over stream seed
  // offsets 1000 + r. The fleet-backed wrapper must reproduce it exactly.
  RunningStatsPair manual;
  for (int r = 0; r < 3; ++r) {
    const auto stream = experiment_->make_stream(
        data::reference_user(), 1000ULL + static_cast<std::uint64_t>(r));
    auto policy = experiment_->make_policy(PolicyKind::PlainRR, 6);
    const auto result = experiment_->run_policy(*policy, stream);
    manual.accuracy.add(result.accuracy.overall());
    manual.success.add(result.completion.attempt_success_rate());
  }
  const auto wrapped = repeat_policy_runs(*experiment_, PolicyKind::PlainRR, 6, 3);
  EXPECT_EQ(wrapped.accuracy.mean(), manual.accuracy.mean());
  EXPECT_EQ(wrapped.accuracy.variance(), manual.accuracy.variance());
  EXPECT_EQ(wrapped.success_rate.mean(), manual.success.mean());
  EXPECT_EQ(wrapped.success_rate.variance(), manual.success.variance());
}

TEST_F(RepeatTest, ThreadCountDoesNotChangeTheNumbers) {
  const auto t1 =
      repeat_policy_runs(*experiment_, PolicyKind::PlainRR, 6, 4, ModelSet::BL2,
                         /*threads=*/1);
  const auto t4 =
      repeat_policy_runs(*experiment_, PolicyKind::PlainRR, 6, 4, ModelSet::BL2,
                         /*threads=*/4);
  EXPECT_EQ(t1.accuracy.count(), t4.accuracy.count());
  EXPECT_EQ(t1.accuracy.mean(), t4.accuracy.mean());
  EXPECT_EQ(t1.accuracy.variance(), t4.accuracy.variance());
  EXPECT_EQ(t1.success_rate.mean(), t4.success_rate.mean());
}

TEST_F(RepeatTest, Validation) {
  EXPECT_THROW(repeat_policy_runs(*experiment_, PolicyKind::AAS, 6, 0),
               std::invalid_argument);
  EXPECT_THROW(repeat_baseline_runs(*experiment_, core::BaselineKind::BL1, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace origin::sim
