#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace origin::core {
namespace {

using data::SensorLocation;

net::Classification cls(int c, double confidence = 0.1) {
  net::Classification out;
  out.predicted_class = c;
  out.confidence = confidence;
  out.probs.assign(6, 0.0f);
  return out;
}

SlotContext context(int slot, std::array<double, 3> stored = {1.0, 1.0, 1.0},
                    std::array<double, 3> ages = {0.0, 0.0, 0.0}) {
  SlotContext ctx;
  ctx.slot = slot;
  ctx.time_s = slot * 0.5;
  for (int s = 0; s < 3; ++s) {
    ctx.nodes[static_cast<std::size_t>(s)].stored_j = stored[static_cast<std::size_t>(s)];
    ctx.nodes[static_cast<std::size_t>(s)].cost_j = 0.5;
    ctx.nodes[static_cast<std::size_t>(s)].vote_age_s = ages[static_cast<std::size_t>(s)];
  }
  return ctx;
}

RankTable rank_best_is(SensorLocation best, int num_classes = 6) {
  RankTable t(num_classes);
  std::array<SensorLocation, 3> order;
  order[0] = best;
  int idx = 1;
  for (int s = 0; s < 3; ++s) {
    if (static_cast<SensorLocation>(s) != best) {
      order[static_cast<std::size_t>(idx++)] = static_cast<SensorLocation>(s);
    }
  }
  for (int c = 0; c < num_classes; ++c) t.set_order(c, order);
  return t;
}

TEST(NaivePolicy, PlansAllSensorsEverySlot) {
  NaiveAllPolicy p(6);
  EXPECT_EQ(p.plan(context(0)), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(p.plan(context(7)), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(p.execution(), ExecutionModel::Deadline);
  EXPECT_THROW(NaiveAllPolicy(0), std::invalid_argument);
}

TEST(NaivePolicy, FusesFreshVotesOnly) {
  NaiveAllPolicy p(6);
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(2), 0.5);
  host.update_vote(SensorLocation::LeftAnkle, cls(2), 0.5);
  EXPECT_EQ(p.fuse(host, context(1)).value(), 2);
  // After aging, no fresh votes: repeats last result (none here -> null).
  host.age_votes();
  EXPECT_FALSE(p.fuse(host, context(2)).has_value());
}

TEST(NaivePolicy, FallsBackToLastResult) {
  NaiveAllPolicy p(6);
  net::HostDevice host;
  p.on_result(0, cls(3), context(0));
  EXPECT_EQ(p.fuse(host, context(1)).value(), 3);
}

TEST(PlainRR, PlansRotationAtOpportunities) {
  PlainRRPolicy p(ExtendedRoundRobin(6));
  EXPECT_EQ(p.plan(context(0)), std::vector<int>{static_cast<int>(SensorLocation::Chest)});
  EXPECT_TRUE(p.plan(context(1)).empty());
  EXPECT_EQ(p.plan(context(2)), std::vector<int>{static_cast<int>(SensorLocation::RightWrist)});
  EXPECT_EQ(p.plan(context(4)), std::vector<int>{static_cast<int>(SensorLocation::LeftAnkle)});
  EXPECT_EQ(p.execution(), ExecutionModel::EagerNvp);
}

TEST(PlainRR, FuseIsLastResult) {
  PlainRRPolicy p(ExtendedRoundRobin(3));
  net::HostDevice host;
  EXPECT_FALSE(p.fuse(host, context(0)).has_value());
  p.on_result(1, cls(4), context(0));
  EXPECT_EQ(p.fuse(host, context(1)).value(), 4);
  p.reset();
  EXPECT_FALSE(p.fuse(host, context(2)).has_value());
}

TEST(AAS, FallsBackToRotationWithoutAnticipation) {
  AASPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::LeftAnkle));
  EXPECT_EQ(p.plan(context(0)), std::vector<int>{static_cast<int>(SensorLocation::Chest)});
  EXPECT_EQ(p.execution(), ExecutionModel::WaitCompute);
}

TEST(AAS, SchedulesBestRankedSensorForAnticipatedActivity) {
  AASPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::LeftAnkle));
  p.on_result(0, cls(2), context(0));
  EXPECT_EQ(p.plan(context(2)),
            std::vector<int>{static_cast<int>(SensorLocation::LeftAnkle)});
}

TEST(AAS, EnergyFallbackToNextBest) {
  AASPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::LeftAnkle));
  p.on_result(0, cls(2), context(0));
  // Ankle (index 1) has no energy; next in rank order should be chosen.
  auto ctx = context(2, {1.0, 0.0, 1.0});
  const auto plan = p.plan(ctx);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NE(plan[0], static_cast<int>(SensorLocation::LeftAnkle));
}

TEST(AAS, AllStarvedSchedulesBestAnyway) {
  AASPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::RightWrist));
  p.on_result(0, cls(1), context(0));
  auto ctx = context(2, {0.0, 0.0, 0.0});
  EXPECT_EQ(p.plan(ctx),
            std::vector<int>{static_cast<int>(SensorLocation::RightWrist)});
}

TEST(AASR, FusesRecalledMajority) {
  AASRPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest));
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(1), 0.1);
  host.update_vote(SensorLocation::LeftAnkle, cls(1), 0.2);
  host.update_vote(SensorLocation::RightWrist, cls(3), 0.3);
  EXPECT_EQ(p.fuse(host, context(1)).value(), 1);
}

TEST(AASR, ThreeWayTieGoesToFreshest) {
  AASRPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest));
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(0), 0.1);
  host.update_vote(SensorLocation::LeftAnkle, cls(1), 0.3);
  host.update_vote(SensorLocation::RightWrist, cls(2), 0.2);
  EXPECT_EQ(p.fuse(host, context(1)).value(), 1);  // ankle newest
}

TEST(AASR, HorizonExcludesStaleVotes) {
  AASRPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest));
  p.set_recall_horizon_s(1.0);
  net::HostDevice host;
  // Two old votes for class 0, one recent for class 5 at t=10s.
  host.update_vote(SensorLocation::Chest, cls(0), 0.1);
  host.update_vote(SensorLocation::LeftAnkle, cls(0), 0.2);
  host.update_vote(SensorLocation::RightWrist, cls(5), 9.8);
  EXPECT_EQ(p.fuse(host, context(20)).value(), 5);
  EXPECT_THROW(p.set_recall_horizon_s(0.0), std::invalid_argument);
}

TEST(AASR, CoverageSchedulingRefreshesStalestSensor) {
  AASRPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest));
  p.set_recall_horizon_s(10.0);  // coverage deadline = 6 s
  p.on_result(0, cls(2), context(0));
  // Wrist's vote is 8 s old (past the deadline) and it has energy.
  auto ctx = context(2, {1.0, 1.0, 1.0}, {0.5, 1.0, 8.0});
  EXPECT_EQ(p.plan(ctx),
            std::vector<int>{static_cast<int>(SensorLocation::RightWrist)});
  // If the stale sensor is starved, fall back to ranked choice.
  auto starved = context(2, {1.0, 1.0, 0.0}, {0.5, 1.0, 8.0});
  EXPECT_EQ(p.plan(starved),
            std::vector<int>{static_cast<int>(SensorLocation::Chest)});
}

TEST(AASR, AnticipatesFromFusedOutput) {
  AASRPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::LeftAnkle));
  net::HostDevice host;
  // Raw result says class 2, but the ensemble fuses to class 2 as well
  // after majority; make fused differ: two votes for 4, last result 2.
  p.on_result(0, cls(2), context(0));
  host.update_vote(SensorLocation::Chest, cls(4), 0.1);
  host.update_vote(SensorLocation::LeftAnkle, cls(4), 0.2);
  host.update_vote(SensorLocation::RightWrist, cls(2), 0.3);
  ASSERT_EQ(p.fuse(host, context(1)).value(), 4);
  // Anticipation for the next plan uses the fused class (4): with our
  // uniform rank table the ankle is best for every class, so instead make
  // sure scheduling still targets rank order (ankle) — covered above —
  // and that reset clears the fused state.
  p.reset();
  EXPECT_FALSE(p.fuse(net::HostDevice{}, context(2)).has_value());
}

TEST(Origin, WeightedFuseUsesConfidenceMatrix) {
  ConfidenceMatrix conf(6, 0.1);
  // Chest votes carry far more weight for class 0.
  conf.set_weight(SensorLocation::Chest, 0, 1.0);
  conf.set_weight(SensorLocation::LeftAnkle, 1, 0.01);
  conf.set_weight(SensorLocation::RightWrist, 1, 0.01);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, /*adaptive=*/false);
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(0, 0.1), 0.3);
  host.update_vote(SensorLocation::LeftAnkle, cls(1, 0.1), 0.3);
  host.update_vote(SensorLocation::RightWrist, cls(1, 0.1), 0.3);
  // 2 ballots for class 1 with tiny weights vs 1 heavy chest ballot.
  EXPECT_EQ(p.fuse(host, context(1)).value(), 0);
}

TEST(Origin, InstantConfidenceMatters) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, false);
  net::HostDevice host;
  // Same timestamps, equal matrix weights: the confident vote must win a
  // 1 v 1 disagreement.
  host.update_vote(SensorLocation::Chest, cls(2, 0.01), 0.3);
  host.update_vote(SensorLocation::LeftAnkle, cls(3, 0.2), 0.3);
  EXPECT_EQ(p.fuse(host, context(1)).value(), 3);
}

TEST(Origin, RecencyDecayFavorsNewVote) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, false);
  p.set_recall_horizon_s(100.0);
  p.set_recency_tau_s(1.0);
  net::HostDevice host;
  // Two stale agreeing votes vs one fresh confident vote.
  host.update_vote(SensorLocation::Chest, cls(0, 0.1), 0.0);
  host.update_vote(SensorLocation::LeftAnkle, cls(0, 0.1), 0.0);
  host.update_vote(SensorLocation::RightWrist, cls(4, 0.1), 10.0);
  EXPECT_EQ(p.fuse(host, context(21)).value(), 4);
  EXPECT_THROW(p.set_recency_tau_s(0.0), std::invalid_argument);
}

TEST(Origin, AdaptiveReinforcesConsensusVotes) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, /*adaptive=*/true);
  net::HostDevice host;
  // Two fresh agreeing votes (high confidence) and one fresh deviant.
  host.update_vote(SensorLocation::Chest, cls(2, 0.5), 0.5);
  host.update_vote(SensorLocation::LeftAnkle, cls(2, 0.5), 0.5);
  host.update_vote(SensorLocation::RightWrist, cls(4, 0.05), 0.5);
  const double chest_before = p.confidence().weight(SensorLocation::Chest, 2);
  const double wrist_before = p.confidence().weight(SensorLocation::RightWrist, 4);
  ASSERT_EQ(p.fuse(host, context(1)).value(), 2);
  // Agreeing sensors reinforced toward their reported confidence...
  EXPECT_GT(p.confidence().weight(SensorLocation::Chest, 2), chest_before);
  // ...the deviant sensor's (class) weight decays toward zero.
  EXPECT_LT(p.confidence().weight(SensorLocation::RightWrist, 4), wrist_before);
  // reset() restores the initial matrix.
  p.reset();
  EXPECT_DOUBLE_EQ(p.confidence().weight(SensorLocation::Chest, 2), chest_before);
}

TEST(Origin, AdaptiveIgnoresRecalledVotes) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, /*adaptive=*/true);
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(2, 0.5), 0.5);
  host.age_votes();  // no fresh votes this slot
  ASSERT_TRUE(p.fuse(host, context(1)).has_value());
  EXPECT_DOUBLE_EQ(p.confidence().weight(SensorLocation::Chest, 2), 0.1);
}

TEST(Origin, NonAdaptiveKeepsMatrixFixed) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, /*adaptive=*/false);
  net::HostDevice host;
  host.update_vote(SensorLocation::Chest, cls(1, 0.9), 0.5);
  p.fuse(host, context(1));
  EXPECT_DOUBLE_EQ(p.confidence().weight(SensorLocation::Chest, 1), 0.1);
}

TEST(Origin, EmptyHostFallsBackToLastResult) {
  ConfidenceMatrix conf(6, 0.1);
  OriginPolicy p(ExtendedRoundRobin(6), rank_best_is(SensorLocation::Chest),
                 conf, false);
  net::HostDevice host;
  EXPECT_FALSE(p.fuse(host, context(0)).has_value());
  p.on_result(0, cls(5), context(0));
  EXPECT_EQ(p.fuse(host, context(1)).value(), 5);
}

TEST(PolicyNames, AreDescriptive) {
  ConfidenceMatrix conf(6, 0.1);
  const auto ranks = rank_best_is(SensorLocation::Chest);
  EXPECT_EQ(NaiveAllPolicy(6).name(), "naive-all");
  EXPECT_EQ(PlainRRPolicy(ExtendedRoundRobin(9)).name(), "RR9");
  EXPECT_EQ(AASPolicy(ExtendedRoundRobin(6), ranks).name(), "RR6+AAS");
  EXPECT_EQ(AASRPolicy(ExtendedRoundRobin(12), ranks).name(), "RR12+AASR");
  EXPECT_EQ(OriginPolicy(ExtendedRoundRobin(12), ranks, conf).name(),
            "RR12+Origin");
}

}  // namespace
}  // namespace origin::core
