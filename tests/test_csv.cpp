#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace origin::util {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, SplitSimpleLine) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(Csv, SplitQuotedFields) {
  const auto f = split_csv_line("\"a,b\",c,\"d\"\"e\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[2], "d\"e");
}

TEST(Csv, SplitEmptyFields) {
  const auto f = split_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
}

TEST(Csv, WriteReadRoundtrip) {
  const std::string path = temp_path("origin_csv_test.csv");
  {
    CsvWriter w(path);
    w.write_row(std::vector<std::string>{"name", "value, with comma"});
    w.write_row(std::vector<double>{1.5, -2.25});
    w.flush();
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "value, with comma");
  EXPECT_DOUBLE_EQ(std::stod(rows[1][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), -2.25);
  std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

TEST(Csv, WriterBadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Csv, ReadSkipsBlankLinesAndCr) {
  const std::string path = temp_path("origin_csv_cr.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\r\n\r\nc,d\n", f);
    std::fclose(f);
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace origin::util
