#include "util/table.hpp"

#include <gtest/gtest.h>

namespace origin::util {
namespace {

TEST(AsciiTable, FormatFixedPrecision) {
  EXPECT_EQ(AsciiTable::format(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::format(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::format(-1.5, 1), "-1.5");
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"policy", "accuracy"});
  t.add_row({"RR12", "83.88"});
  const std::string s = t.str();
  EXPECT_NE(s.find("policy"), std::string::npos);
  EXPECT_NE(s.find("RR12"), std::string::npos);
  EXPECT_NE(s.find("83.88"), std::string::npos);
}

TEST(AsciiTable, NumericRowHelper) {
  AsciiTable t({"name", "a", "b"});
  t.add_row("row", {1.234, 5.678}, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.7"), std::string::npos);
}

TEST(AsciiTable, ShortRowsArePadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.str());
}

TEST(AsciiTable, ColumnsAlign) {
  AsciiTable t({"x", "yyyy"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.str();
  // Every line between rules must have equal length.
  std::size_t expected = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace origin::util
