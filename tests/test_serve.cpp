// The serving subsystem's core contracts: open-loop arrival determinism,
// slot-granular stepping equivalent to batch Simulator::run, interleaved
// sessions sharing shard models without cross-talk, bit-identity of the
// ServeLoop across thread counts, and the HTTP/JSONL endpoint (routed
// socketless through handle(), plus one real-socket smoke).
#include "serve/serve_loop.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

#include "fleet/fleet_runner.hpp"
#include "serve/endpoint.hpp"
#include "util/rng.hpp"

namespace origin::serve {
namespace {

core::PipelineConfig micro_pipeline() {
  core::PipelineConfig cfg;
  cfg.train_per_class = 12;
  cfg.calib_per_class = 6;
  cfg.test_per_class = 6;
  cfg.train.epochs = 2;
  cfg.use_cache = false;
  cfg.seed = 4242;
  return cfg;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ExperimentConfig cfg;
    cfg.pipeline = micro_pipeline();
    cfg.stream_slots = 60;
    experiment_ = new sim::Experiment(cfg);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static ServeConfig small_config() {
    ServeConfig cfg;
    cfg.users = 6;
    cfg.arrival_rate_hz = 2.0;
    cfg.shards = 3;
    cfg.policy = sim::PolicyKind::Origin;
    return cfg;
  }

  static sim::Experiment* experiment_;
};

sim::Experiment* ServeTest::experiment_ = nullptr;

TEST(ArrivalSchedule, DeterministicMonotoneAndValidated) {
  ArrivalConfig cfg;
  cfg.users = 32;
  cfg.rate_per_s = 3.0;
  cfg.seed = 77;
  cfg.slot_seconds = 0.5;
  const ArrivalSchedule a(cfg);
  const ArrivalSchedule b(cfg);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tick(i), b.tick(i));
    if (i > 0) EXPECT_GE(a.tick(i), a.tick(i - 1));
  }
  EXPECT_EQ(a.last_tick(), a.tick(31));

  cfg.seed = 78;
  const ArrivalSchedule c(cfg);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || a.tick(i) != c.tick(i);
  }
  EXPECT_TRUE(any_differs);

  ArrivalConfig bad = cfg;
  bad.rate_per_s = 0.0;
  EXPECT_THROW(ArrivalSchedule{bad}, std::invalid_argument);
  bad = cfg;
  bad.slot_seconds = 0.0;
  EXPECT_THROW(ArrivalSchedule{bad}, std::invalid_argument);
}

TEST_F(ServeTest, InterleavedSessionsMatchSequentialRuns) {
  // Two sessions advanced strictly alternately on one shard's shared
  // models must produce the same outputs as each served to completion on
  // its own — per-slot inference state never leaks across sessions.
  const auto run_alone = [&](std::uint64_t id) {
    ServeConfig cfg = small_config();
    SessionSpec spec;
    SessionShard shard(*experiment_, cfg.set);
    util::Rng rng(fleet::shard_seed(cfg.population_seed, id));
    spec.id = id;
    spec.user = data::random_user(static_cast<int>(id), rng, cfg.severity);
    spec.seed_offset = fleet::shard_seed(cfg.population_seed ^ 0xA11CEULL, id);
    spec.policy = cfg.policy;
    spec.rr_cycle = cfg.rr_cycle;
    spec.set = cfg.set;
    auto session = std::make_unique<Session>(*experiment_, spec, shard.models(),
                                             cfg.ring_capacity, 0);
    std::vector<int> outputs;
    while (!session->done()) outputs.push_back(session->stepper().step().predicted);
    return outputs;
  };

  const auto alone0 = run_alone(0);
  const auto alone1 = run_alone(1);

  ServeConfig cfg = small_config();
  SessionShard shard(*experiment_, cfg.set);
  std::array<std::unique_ptr<Session>, 2> sessions;
  for (std::uint64_t id = 0; id < 2; ++id) {
    SessionSpec spec;
    util::Rng rng(fleet::shard_seed(cfg.population_seed, id));
    spec.id = id;
    spec.user = data::random_user(static_cast<int>(id), rng, cfg.severity);
    spec.seed_offset = fleet::shard_seed(cfg.population_seed ^ 0xA11CEULL, id);
    spec.policy = cfg.policy;
    spec.rr_cycle = cfg.rr_cycle;
    spec.set = cfg.set;
    sessions[id] = std::make_unique<Session>(*experiment_, spec, shard.models(),
                                             cfg.ring_capacity, 0);
  }
  std::array<std::vector<int>, 2> interleaved;
  while (!sessions[0]->done() || !sessions[1]->done()) {
    for (int s = 0; s < 2; ++s) {
      if (!sessions[s]->done()) {
        interleaved[s].push_back(sessions[s]->stepper().step().predicted);
      }
    }
  }
  EXPECT_EQ(interleaved[0], alone0);
  EXPECT_EQ(interleaved[1], alone1);
}

TEST_F(ServeTest, CompletedSessionsMatchBatchFleetRun) {
  // A drained serving process reproduces the batch fleet simulator
  // bit-for-bit: same per-user derivation, same per-slot outputs.
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  loop.drain();
  const auto completed = loop.completed_sessions();
  ASSERT_EQ(completed.size(), cfg.users);

  fleet::PopulationConfig pop;
  pop.users = cfg.users;
  pop.runs_per_user = 1;
  pop.root_seed = cfg.population_seed;
  pop.severity = cfg.severity;
  pop.policy = cfg.policy;
  pop.rr_cycle = cfg.rr_cycle;
  pop.set = cfg.set;
  fleet::FleetRunnerConfig runner_cfg;
  runner_cfg.keep_sim_results = true;
  const auto batch =
      fleet::FleetRunner(*experiment_, runner_cfg).run(fleet::make_population(pop));
  ASSERT_EQ(batch.sim_results.size(), cfg.users);

  for (const CompletedSession& record : completed) {
    SCOPED_TRACE(record.id);
    const sim::SimResult& ref = batch.sim_results[record.id];
    EXPECT_EQ(record.outputs, ref.outputs);
    EXPECT_EQ(record.outputs_fnv1a, fnv1a_outputs(ref.outputs));
    EXPECT_EQ(record.accuracy, ref.accuracy.overall());
    EXPECT_EQ(record.success_rate, ref.completion.attempt_success_rate());
  }
}

TEST_F(ServeTest, BitIdenticalAcrossThreadCountsAndBatching) {
  const auto run = [&](unsigned threads, int batch_slots) {
    ServeConfig cfg = small_config();
    cfg.threads = threads;
    cfg.batch_slots = batch_slots;
    ServeLoop loop(*experiment_, cfg);
    loop.drain(/*chunk=*/7);
    return std::pair(loop.completed_sessions(), loop.metrics());
  };
  const auto [base_log, base_metrics] = run(1, 0);
  ASSERT_EQ(base_log.size(), small_config().users);
  for (const auto& [threads, batch] :
       std::vector<std::pair<unsigned, int>>{{2, 0}, {8, 0}, {2, 16}}) {
    SCOPED_TRACE(threads);
    SCOPED_TRACE(batch);
    const auto [log, metrics] = run(threads, batch);
    ASSERT_EQ(log.size(), base_log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].id, base_log[i].id);
      EXPECT_EQ(log[i].completed_tick, base_log[i].completed_tick);
      EXPECT_EQ(log[i].outputs, base_log[i].outputs);
      EXPECT_EQ(log[i].accuracy, base_log[i].accuracy);
    }
    EXPECT_TRUE(obs::MetricsSnapshot::deterministic_equal(base_metrics, metrics));
  }
}

TEST_F(ServeTest, CrossSessionBatchingBitIdentical) {
  // The tentpole contract: gathering the windows of many sessions into
  // per-sensor GEMM panels must not change one published byte. Compare a
  // sequential (serve_batch=0) baseline against the batched path at
  // threads 1/2/8, with the flight recorder on and off.
  const auto run = [&](int serve_batch, unsigned threads,
                       std::size_t flight_capacity) {
    ServeConfig cfg = small_config();
    cfg.serve_batch = serve_batch;
    cfg.threads = threads;
    cfg.flight_capacity = flight_capacity;
    ServeLoop loop(*experiment_, cfg);
    loop.drain(/*chunk=*/7);
    return std::tuple(loop.completed_sessions(), loop.metrics(),
                      loop.status());
  };
  const auto [base_log, base_metrics, base_status] = run(0, 1, 1 << 12);
  ASSERT_EQ(base_log.size(), small_config().users);
  EXPECT_FALSE(base_status.serve_batch);
  EXPECT_EQ(base_status.batch_panels, 0u);  // sequential path: no panels
  for (unsigned threads : {1u, 2u, 8u}) {
    for (std::size_t flight_capacity : {std::size_t{0}, std::size_t{1} << 12}) {
      SCOPED_TRACE(threads);
      SCOPED_TRACE(flight_capacity);
      const auto [log, metrics, status] = run(1, threads, flight_capacity);
      EXPECT_TRUE(status.serve_batch);
      EXPECT_GT(status.batch_panels, 0u);
      EXPECT_GE(status.batch_windows, status.batch_panels);
      ASSERT_EQ(log.size(), base_log.size());
      for (std::size_t i = 0; i < log.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(log[i].id, base_log[i].id);
        EXPECT_EQ(log[i].completed_tick, base_log[i].completed_tick);
        EXPECT_EQ(log[i].outputs, base_log[i].outputs);
        EXPECT_EQ(log[i].outputs_fnv1a, base_log[i].outputs_fnv1a);
        EXPECT_EQ(log[i].accuracy, base_log[i].accuracy);
        EXPECT_EQ(log[i].success_rate, base_log[i].success_rate);
        EXPECT_EQ(log[i].harvested_j, base_log[i].harvested_j);
        EXPECT_EQ(log[i].consumed_j, base_log[i].consumed_j);
      }
      EXPECT_TRUE(
          obs::MetricsSnapshot::deterministic_equal(base_metrics, metrics));
      // The occupancy histogram is the panel ledger: one observation per
      // panel, summing to the windows served through them.
      const auto& occupancy = metrics.histogram_value("serve.batch_occupancy");
      EXPECT_EQ(occupancy.count, status.batch_panels);
      EXPECT_EQ(occupancy.sum, static_cast<double>(status.batch_windows));
      EXPECT_EQ(metrics.counter_value("serve.batch_panels"),
                status.batch_panels);
      EXPECT_EQ(metrics.counter_value("serve.batch_windows"),
                status.batch_windows);
    }
  }
}

TEST_F(ServeTest, StatusAndSummariesTrackProgress) {
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  EXPECT_FALSE(loop.done());
  loop.tick(5);
  const auto status = loop.status();
  EXPECT_EQ(status.now, 5u);
  EXPECT_GT(status.admitted, 0u);
  const auto summaries = loop.session_summaries();
  EXPECT_EQ(summaries.size(), status.active);
  for (const auto& summary : summaries) {
    EXPECT_LE(summary.slots_done, summary.slots_total);
    EXPECT_TRUE(loop.session_summary(summary.id).has_value());
  }
  loop.drain();
  EXPECT_TRUE(loop.done());
  EXPECT_EQ(loop.status().completed, cfg.users);
  EXPECT_EQ(loop.status().slots_served, cfg.users * 60u);
  // Virtual clock: every slot of every session was served exactly once.
  EXPECT_TRUE(loop.session_summaries().empty());
}

TEST_F(ServeTest, EndpointRoutes) {
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  loop.tick(3);
  obs::RunManifest manifest("test_serve");
  ServeEndpoint endpoint(loop, &manifest);

  const auto get = [&](const std::string& target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    const std::size_t q = target.find('?');
    request.path = target.substr(0, q);
    request.query = q == std::string::npos ? "" : target.substr(q + 1);
    return endpoint.handle(request);
  };

  EXPECT_EQ(get("/healthz").status, 200);
  EXPECT_NE(get("/healthz").body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(get("/status").body.find("\"slots_served\""), std::string::npos);
  EXPECT_EQ(get("/metrics").status, 200);
  EXPECT_NE(get("/metrics").body.find("serve.slots.served"),
            std::string::npos);
  EXPECT_EQ(get("/manifest").status, 200);
  EXPECT_EQ(get("/sessions").status, 200);

  const auto summaries = loop.session_summaries();
  ASSERT_FALSE(summaries.empty());
  const std::string one = "/sessions/" + std::to_string(summaries[0].id);
  EXPECT_EQ(get(one).status, 200);
  EXPECT_EQ(get("/sessions/9999").status, 404);
  EXPECT_EQ(get("/sessions/abc").status, 400);

  const auto results = get("/results?tail=2");
  EXPECT_EQ(results.status, 200);
  EXPECT_EQ(results.content_type, "application/x-ndjson");
  // JSONL: every line is one self-contained object.
  std::size_t lines = 0;
  for (char c : results.body) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(get("/results?tail=junk").status, 400);
  EXPECT_EQ(get("/completed").status, 200);

  EXPECT_EQ(get("/nothing").status, 404);
  HttpRequest post;
  post.method = "POST";
  post.path = "/status";
  EXPECT_EQ(endpoint.handle(post).status, 405);

  // Endpoint never mutates the loop.
  EXPECT_EQ(loop.now(), 3u);
}

TEST(HttpHelpers, QueryParamAndWireFormat) {
  EXPECT_EQ(query_param("a=1&b=2", "b", "x"), "2");
  EXPECT_EQ(query_param("a=1&b=2", "c", "x"), "x");
  EXPECT_EQ(query_param("", "a", "d"), "d");
  const std::string wire = to_wire({404, "application/json", "{}"});
  EXPECT_NE(wire.find("HTTP/1.0 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n\r\n{}"), std::string::npos);
}

TEST_F(ServeTest, HttpServerSocketSmoke) {
  ServeConfig cfg = small_config();
  ServeLoop loop(*experiment_, cfg);
  loop.tick(2);
  ServeEndpoint endpoint(loop);
  std::unique_ptr<HttpServer> server;
  try {
    server = endpoint.serve(/*port=*/0);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "cannot bind a loopback socket in this environment";
  }
  ASSERT_NE(server->port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string request = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  server->stop();
}

}  // namespace
}  // namespace origin::serve
