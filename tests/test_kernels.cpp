// Bit-identity contract of the fast inference kernels (nn/kernels.hpp):
// the im2row + blocked-GEMM forward paths and every batched forward must
// reproduce the naive reference loops exactly — not approximately — since
// the fleet runtime's determinism guarantees (bit-identical metrics across
// thread counts and batching modes) rest on it.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/kernels.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace origin::nn {
namespace {

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on float is exact comparison — bit identity, not epsilon.
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

Tensor random_input(const std::vector<int>& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(shape, rng, 1.0f);
}

// --- Conv1D kernel vs reference loops ---------------------------------

struct ConvCase {
  int cin, cout, kernel, stride, length;
};

TEST(Kernels, ConvForwardMatchesReferenceAcrossShapes) {
  const ConvCase cases[] = {
      {1, 1, 1, 1, 1},    // degenerate: everything is 1
      {2, 3, 3, 1, 8},    // small odd
      {3, 7, 5, 2, 21},   // stride > 1, odd filter count (GEMM remainders)
      {2, 3, 9, 1, 9},    // kernel == length -> single output column
      {6, 20, 5, 1, 64},  // the deployed BL-1 first stage
      {5, 4, 2, 3, 17},   // stride > kernel
      {4, 13, 3, 2, 11},  // rows not a multiple of the 4-row tile
  };
  std::uint64_t seed = 1000;
  for (const auto& c : cases) {
    util::Rng rng(seed);
    Conv1D conv(c.cin, c.cout, c.kernel, c.stride, rng);
    const Tensor x = random_input({c.cin, c.length}, seed + 1);
    const Tensor fast = conv.forward(x, false);
    const Tensor ref = conv.forward_reference(x);
    SCOPED_TRACE(conv.describe());
    expect_bit_identical(fast, ref);
    seed += 2;
  }
}

TEST(Kernels, ConvForwardMatchesReferenceAfterPruning) {
  // Structured pruning produces the odd channel counts the blocked GEMM's
  // remainder paths must handle (e.g. 20 -> 17 filters).
  util::Rng rng(7);
  Conv1D conv(6, 20, 5, 1, rng);
  conv.remove_output_filter(3);
  conv.remove_output_filter(11);
  conv.remove_output_filter(0);
  ASSERT_EQ(conv.out_channels(), 17);
  const Tensor x = random_input({6, 64}, 8);
  expect_bit_identical(conv.forward(x, false), conv.forward_reference(x));

  Conv1D conv2(6, 8, 5, 1, rng);
  conv2.remove_input_channel(2);
  ASSERT_EQ(conv2.in_channels(), 5);
  const Tensor x2 = random_input({5, 33}, 9);
  expect_bit_identical(conv2.forward(x2, false), conv2.forward_reference(x2));
}

TEST(Kernels, ConvTrainAndInferencePathsAgree) {
  util::Rng rng(17);
  Conv1D conv(3, 5, 4, 2, rng);
  const Tensor x = random_input({3, 19}, 18);
  expect_bit_identical(conv.forward(x, true), conv.forward(x, false));
}

TEST(Kernels, ConvForwardBatchMatchesPerSample) {
  util::Rng rng(21);
  Conv1D conv(4, 9, 5, 1, rng);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < 7; ++b) {
    inputs.push_back(random_input({4, 25}, 100 + static_cast<std::uint64_t>(b)));
  }
  for (const auto& t : inputs) ptrs.push_back(&t);
  std::vector<Tensor> outputs(inputs.size());
  conv.forward_batch(ptrs.data(), ptrs.size(), outputs.data());
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    SCOPED_TRACE(b);
    expect_bit_identical(outputs[b], conv.forward_reference(inputs[b]));
  }
}

// --- Dense kernel vs reference loops ----------------------------------

TEST(Kernels, DenseForwardMatchesReferenceAcrossShapes) {
  const std::pair<int, int> cases[] = {{1, 1}, {3, 2}, {17, 13}, {64, 64},
                                       {960, 64}, {5, 31}};
  std::uint64_t seed = 2000;
  for (const auto& [in, out] : cases) {
    util::Rng rng(seed);
    Dense dense(in, out, rng);
    const Tensor x = random_input({in}, seed + 1);
    SCOPED_TRACE(dense.describe());
    expect_bit_identical(dense.forward(x, false), dense.forward_reference(x));
    seed += 2;
  }
}

TEST(Kernels, DenseForwardBatchMatchesPerSample) {
  util::Rng rng(31);
  Dense dense(23, 11, rng);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < 9; ++b) {
    inputs.push_back(random_input({23}, 300 + static_cast<std::uint64_t>(b)));
  }
  for (const auto& t : inputs) ptrs.push_back(&t);
  std::vector<Tensor> outputs(inputs.size());
  dense.forward_batch(ptrs.data(), ptrs.size(), outputs.data());
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    SCOPED_TRACE(b);
    expect_bit_identical(outputs[b], dense.forward_reference(inputs[b]));
  }
}

// --- Thread-local scratch reuse ---------------------------------------

TEST(Kernels, ScratchSurvivesAlternatingShapes) {
  // Alternate between two conv shapes on one thread: the shared scratch
  // buffers must grow/reuse without corrupting either computation.
  util::Rng rng(41);
  Conv1D small(2, 3, 3, 1, rng);
  Conv1D big(6, 20, 5, 1, rng);
  const Tensor xs = random_input({2, 10}, 42);
  const Tensor xb = random_input({6, 64}, 43);
  for (int round = 0; round < 3; ++round) {
    expect_bit_identical(small.forward(xs, false), small.forward_reference(xs));
    expect_bit_identical(big.forward(xb, false), big.forward_reference(xb));
  }
}

TEST(Kernels, ScratchGrowsAndShrinksAcrossBatchSizes) {
  util::Rng rng(51);
  Dense dense(12, 5, rng);
  for (std::size_t count : {1u, 16u, 2u, 33u, 1u}) {
    std::vector<Tensor> inputs;
    std::vector<const Tensor*> ptrs;
    for (std::size_t b = 0; b < count; ++b) {
      inputs.push_back(
          random_input({12}, 500 + static_cast<std::uint64_t>(b)));
    }
    for (const auto& t : inputs) ptrs.push_back(&t);
    std::vector<Tensor> outputs(count);
    dense.forward_batch(ptrs.data(), count, outputs.data());
    for (std::size_t b = 0; b < count; ++b) {
      expect_bit_identical(outputs[b], dense.forward_reference(inputs[b]));
    }
  }
}

// --- Whole-model batched inference ------------------------------------

Sequential deployed_like_cnn(std::uint64_t seed) {
  // Mirrors the BL-1 per-sensor architecture, Dropout included, so the
  // batched path covers the default Layer::forward_batch fallback too.
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Conv1D>(6, 20, 5, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Conv1D>(20, 32, 5, 1, rng)
      .emplace<ReLU>()
      .emplace<MaxPool1D>(2)
      .emplace<Flatten>()
      .emplace<Dense>(32 * 13, 64, rng)
      .emplace<ReLU>()
      .emplace<Dropout>(0.5f)
      .emplace<Dense>(64, 6, rng);
  return m;
}

TEST(Kernels, PredictBatchMatchesSequentialPredict) {
  Sequential m = deployed_like_cnn(61);
  std::vector<Tensor> inputs;
  for (int b = 0; b < 12; ++b) {
    inputs.push_back(random_input({6, 64}, 600 + static_cast<std::uint64_t>(b)));
  }
  const auto batched = m.predict_batch(std::span<const Tensor>(inputs));
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    EXPECT_EQ(batched[b], m.predict(inputs[b])) << "sample " << b;
  }
}

TEST(Kernels, PredictProbaBatchBitIdenticalToPerSample) {
  Sequential m = deployed_like_cnn(71);
  std::vector<Tensor> inputs;
  for (int b = 0; b < 5; ++b) {
    inputs.push_back(random_input({6, 64}, 700 + static_cast<std::uint64_t>(b)));
  }
  const auto batched = m.predict_proba_batch(std::span<const Tensor>(inputs));
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    const auto single = m.predict_proba(inputs[b]);
    ASSERT_EQ(batched[b].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[b][i], single[i]) << "sample " << b << " class " << i;
    }
  }
}

TEST(Kernels, ForwardBatchInferenceHandlesEmptyAndSingle) {
  Sequential m = deployed_like_cnn(81);
  m.forward_batch_inference(nullptr, 0, nullptr);  // no-op, no crash
  const Tensor x = random_input({6, 64}, 82);
  const Tensor* ptr = &x;
  Tensor out;
  m.forward_batch_inference(&ptr, 1, &out);
  expect_bit_identical(out, m.forward(x, false));
}

// --- Inference retains nothing; backward is guarded -------------------

TEST(Kernels, InferenceForwardDoesNotEnableBackward) {
  util::Rng rng(91);
  Conv1D conv(2, 3, 3, 1, rng);
  const Tensor x = random_input({2, 8}, 92);
  conv.forward(x, false);
  EXPECT_THROW(conv.backward(Tensor({3, 6})), std::logic_error);

  Dense dense(4, 2, rng);
  dense.forward(random_input({4}, 93), false);
  EXPECT_THROW(dense.backward(Tensor({2})), std::logic_error);

  ReLU relu;
  relu.forward(random_input({5}, 94), false);
  EXPECT_THROW(relu.backward(Tensor({5})), std::logic_error);

  MaxPool1D pool(2);
  pool.forward(random_input({1, 8}, 95), false);
  EXPECT_THROW(pool.backward(Tensor({1, 4})), std::logic_error);

  Softmax sm;
  sm.forward(random_input({4}, 96), false);
  EXPECT_THROW(sm.backward(Tensor({4})), std::logic_error);
}

TEST(Kernels, TrainingForwardStillEnablesBackward) {
  util::Rng rng(101);
  Conv1D conv(2, 3, 3, 1, rng);
  const Tensor x = random_input({2, 8}, 102);
  conv.forward(x, true);
  EXPECT_NO_THROW(conv.backward(Tensor({3, 6})));

  // A training forward followed by an inference forward drops the cache
  // again — predict() between training steps must not leak state.
  conv.forward(x, true);
  conv.forward(x, false);
  EXPECT_THROW(conv.backward(Tensor({3, 6})), std::logic_error);
}

}  // namespace
}  // namespace origin::nn
