#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace origin::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.25);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussMomentsMatchStandardNormal) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussShiftScale) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gauss(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(0.5), 0.0);
  }
}

TEST(Rng, LognormalMedianNearExpMu) {
  Rng rng(13);
  std::vector<double> v(50001);
  for (auto& x : v) x = rng.lognormal(std::log(4.0), 0.5);
  std::nth_element(v.begin(), v.begin() + 25000, v.end());
  EXPECT_NEAR(v[25000], 4.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
  Rng rng(15);
  for (int i = 0; i < 5000; ++i) {
    const auto idx = rng.categorical({0.0, 1.0, 2.0, 0.0});
    ASSERT_TRUE(idx == 1 || idx == 2);
  }
}

TEST(Rng, CategoricalProportions) {
  Rng rng(16);
  std::vector<int> counts(3, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6.0, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(18);
  Rng child = parent.fork();
  const auto c1 = child.next_u64();
  // Recreate: fork from same seed yields same child stream.
  Rng parent2(18);
  Rng child2 = parent2.fork();
  EXPECT_EQ(child2.next_u64(), c1);
}

TEST(Rng, GaussCacheDoesNotBreakDeterminism) {
  Rng a(19), b(19);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.gauss(), b.gauss());
  }
}

}  // namespace
}  // namespace origin::util
