#include "net/host.hpp"

#include <gtest/gtest.h>

namespace origin::net {
namespace {

Classification cls(int c) {
  Classification out;
  out.predicted_class = c;
  out.confidence = 0.1;
  return out;
}

TEST(Host, StartsEmpty) {
  HostDevice host;
  EXPECT_EQ(host.populated(), 0);
  for (int s = 0; s < data::kNumSensors; ++s) {
    EXPECT_FALSE(host.vote(static_cast<data::SensorLocation>(s)).has_value());
  }
}

TEST(Host, UpdateStoresFreshVote) {
  HostDevice host;
  host.update_vote(data::SensorLocation::Chest, cls(2), 1.5);
  const auto& v = host.vote(data::SensorLocation::Chest);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->classification.predicted_class, 2);
  EXPECT_DOUBLE_EQ(v->timestamp_s, 1.5);
  EXPECT_TRUE(v->fresh);
  EXPECT_EQ(host.populated(), 1);
}

TEST(Host, AgeVotesClearsFreshFlag) {
  HostDevice host;
  host.update_vote(data::SensorLocation::LeftAnkle, cls(0), 1.0);
  host.age_votes();
  const auto& v = host.vote(data::SensorLocation::LeftAnkle);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->fresh);
  EXPECT_EQ(v->classification.predicted_class, 0);  // recall persists
}

TEST(Host, NewVoteOverwritesOld) {
  HostDevice host;
  host.update_vote(data::SensorLocation::RightWrist, cls(1), 1.0);
  host.age_votes();
  host.update_vote(data::SensorLocation::RightWrist, cls(4), 2.0);
  const auto& v = host.vote(data::SensorLocation::RightWrist);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->classification.predicted_class, 4);
  EXPECT_DOUBLE_EQ(v->timestamp_s, 2.0);
  EXPECT_TRUE(v->fresh);
}

TEST(Host, VotesAreIndependentPerSensor) {
  HostDevice host;
  host.update_vote(data::SensorLocation::Chest, cls(1), 1.0);
  host.update_vote(data::SensorLocation::LeftAnkle, cls(2), 2.0);
  EXPECT_EQ(host.populated(), 2);
  EXPECT_FALSE(host.vote(data::SensorLocation::RightWrist).has_value());
}

TEST(Host, ClearEmptiesBuffer) {
  HostDevice host;
  host.update_vote(data::SensorLocation::Chest, cls(1), 1.0);
  host.clear();
  EXPECT_EQ(host.populated(), 0);
}

}  // namespace
}  // namespace origin::net
