#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace origin::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  DatasetSpec spec = dataset_spec(DatasetKind::MHealthLike);
};

TEST_F(DatasetTest, TrainingSetBalancedAndShaped) {
  const auto samples =
      make_training_set(spec, SensorLocation::Chest, 20, reference_user(), 1);
  EXPECT_EQ(samples.size(), 120u);
  const auto hist = class_histogram(samples, spec.num_classes());
  for (int c : hist) EXPECT_EQ(c, 20);
  for (const auto& s : samples) {
    ASSERT_EQ(s.input.shape(), (std::vector<int>{6, 64}));
  }
}

TEST_F(DatasetTest, TrainingSetDeterministic) {
  const auto a =
      make_training_set(spec, SensorLocation::LeftAnkle, 5, reference_user(), 2);
  const auto b =
      make_training_set(spec, SensorLocation::LeftAnkle, 5, reference_user(), 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].label, b[i].label);
    for (std::size_t j = 0; j < a[i].input.size(); ++j) {
      ASSERT_FLOAT_EQ(a[i].input[j], b[i].input[j]);
    }
  }
}

TEST_F(DatasetTest, TrainingSetSeedsDiffer) {
  const auto a =
      make_training_set(spec, SensorLocation::Chest, 5, reference_user(), 3);
  const auto b =
      make_training_set(spec, SensorLocation::Chest, 5, reference_user(), 4);
  double diff = 0.0;
  for (std::size_t j = 0; j < a[0].input.size(); ++j) {
    diff += std::fabs(a[0].input[j] - b[0].input[j]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST_F(DatasetTest, TrainingSetValidation) {
  EXPECT_THROW(make_training_set(spec, SensorLocation::Chest, 0, reference_user(), 1),
               std::invalid_argument);
}

TEST_F(DatasetTest, StreamBasics) {
  const auto stream = make_stream(spec, 200, reference_user(), 5);
  EXPECT_EQ(stream.slots.size(), 200u);
  EXPECT_DOUBLE_EQ(stream.duration_s(), 100.0);
  ASSERT_FALSE(stream.segments.empty());
  for (const auto& slot : stream.slots) {
    ASSERT_GE(slot.label, 0);
    ASSERT_LT(slot.label, spec.num_classes());
    for (const auto& w : slot.windows) {
      ASSERT_EQ(w.shape(), (std::vector<int>{6, 64}));
    }
  }
}

TEST_F(DatasetTest, StreamLabelsMatchSegments) {
  const auto stream = make_stream(spec, 300, reference_user(), 6);
  for (const auto& slot : stream.slots) {
    const Activity expected = activity_at(
        stream.segments, slot.t0_s + 0.5 * spec.window_seconds());
    EXPECT_EQ(slot.activity, expected);
    EXPECT_EQ(slot.label, spec.class_of(expected));
  }
}

TEST_F(DatasetTest, StreamHasTemporalContinuity) {
  const auto stream = make_stream(spec, 1000, reference_user(), 7);
  int changes = 0;
  for (std::size_t i = 1; i < stream.slots.size(); ++i) {
    if (stream.slots[i].label != stream.slots[i - 1].label) ++changes;
  }
  // Mean dwell 25 s = 50 slots; expect roughly 1000/50 = 20 changes.
  EXPECT_GT(changes, 5);
  EXPECT_LT(changes, 60);
}

TEST_F(DatasetTest, AmbiguousEpisodesHaveExpectedDuty) {
  StreamConfig cfg;
  cfg.ambiguous_len_s = 2.5;
  cfg.ambiguous_gap_s = 5.0;
  const auto stream = make_stream(spec, 4000, reference_user(), 8, cfg);
  int ambiguous = 0;
  for (const auto& slot : stream.slots) {
    if (slot.ambiguous) ++ambiguous;
  }
  const double duty = ambiguous / 4000.0;
  EXPECT_GT(duty, 0.2);
  EXPECT_LT(duty, 0.45);
}

TEST_F(DatasetTest, AmbiguityIsEpisodic) {
  const auto stream = make_stream(spec, 4000, reference_user(), 9);
  // Count maximal runs of ambiguous slots; mean run length should exceed
  // 2 slots (episodes last ~2.5 s = 5 slots).
  int runs = 0, total = 0;
  bool in_run = false;
  for (const auto& slot : stream.slots) {
    if (slot.ambiguous) {
      ++total;
      if (!in_run) {
        ++runs;
        in_run = true;
      }
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 0);
  EXPECT_GT(static_cast<double>(total) / runs, 2.0);
}

TEST_F(DatasetTest, SnrConfigAddsNoise) {
  StreamConfig noisy;
  noisy.snr_db = 0.0;  // extreme noise
  const auto clean = make_stream(spec, 20, reference_user(), 10);
  const auto loud = make_stream(spec, 20, reference_user(), 10, noisy);
  // Same seed, same labels; windows must differ substantially.
  double diff = 0.0;
  for (std::size_t i = 0; i < clean.slots.size(); ++i) {
    for (std::size_t j = 0; j < clean.slots[i].windows[0].size(); ++j) {
      diff += std::fabs(clean.slots[i].windows[0][j] - loud.slots[i].windows[0][j]);
    }
  }
  EXPECT_GT(diff, 10.0);
}

TEST_F(DatasetTest, StreamValidation) {
  EXPECT_THROW(make_stream(spec, 0, reference_user(), 1), std::invalid_argument);
}

TEST_F(DatasetTest, ClassHistogramValidatesLabels) {
  nn::Samples bad;
  bad.push_back({nn::Tensor({1}), 7});
  EXPECT_THROW(class_histogram(bad, 6), std::out_of_range);
}

TEST_F(DatasetTest, Pamap2StreamUsesItsOwnClasses) {
  const auto p2 = dataset_spec(DatasetKind::Pamap2Like);
  const auto stream = make_stream(p2, 100, reference_user(), 11);
  for (const auto& slot : stream.slots) {
    EXPECT_LT(slot.label, 5);
    EXPECT_NE(slot.activity, Activity::Jogging);
  }
}

}  // namespace
}  // namespace origin::data
