#include "data/signal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace origin::data {
namespace {

class SignalModelTest : public ::testing::Test {
 protected:
  DatasetSpec spec = dataset_spec(DatasetKind::MHealthLike);
  SignalModel model{spec, reference_user()};
};

TEST_F(SignalModelTest, WindowShape) {
  util::Rng rng(1);
  const auto w = model.window(Activity::Walking, SensorLocation::Chest, 0.0, rng);
  EXPECT_EQ(w.shape(), (std::vector<int>{6, 64}));
}

TEST_F(SignalModelTest, DeterministicGivenRngAndStyle) {
  util::Rng a(2), b(2);
  const SharedStyle style;
  const auto wa = model.window(Activity::Running, SensorLocation::LeftAnkle, 1.0, a, style);
  const auto wb = model.window(Activity::Running, SensorLocation::LeftAnkle, 1.0, b, style);
  for (std::size_t i = 0; i < wa.size(); ++i) ASSERT_FLOAT_EQ(wa[i], wb[i]);
}

TEST_F(SignalModelTest, DifferentWindowsDiffer) {
  util::Rng rng(3);
  const auto w1 = model.window(Activity::Walking, SensorLocation::Chest, 0.0, rng);
  const auto w2 = model.window(Activity::Walking, SensorLocation::Chest, 0.0, rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < w1.size(); ++i) diff += std::fabs(w1[i] - w2[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Signature, StableAcrossCalls) {
  const auto a = signature(Activity::Cycling, SensorLocation::RightWrist);
  const auto b = signature(Activity::Cycling, SensorLocation::RightWrist);
  EXPECT_DOUBLE_EQ(a.fundamental_hz, b.fundamental_hz);
  for (int c = 0; c < kImuChannels; ++c) {
    EXPECT_DOUBLE_EQ(a.amp1[static_cast<std::size_t>(c)],
                     b.amp1[static_cast<std::size_t>(c)]);
  }
}

TEST(Signature, DistinctPerActivityAndLocation) {
  const auto a = signature(Activity::Walking, SensorLocation::Chest);
  const auto b = signature(Activity::Running, SensorLocation::Chest);
  const auto c = signature(Activity::Walking, SensorLocation::LeftAnkle);
  EXPECT_NE(a.fundamental_hz, b.fundamental_hz);
  EXPECT_NE(a.amp1[0], c.amp1[0]);
}

TEST(Distinctiveness, InUnitInterval) {
  for (int a = 0; a < kNumActivityKinds; ++a) {
    for (int s = 0; s < kNumSensors; ++s) {
      const double d = distinctiveness(static_cast<Activity>(a),
                                       static_cast<SensorLocation>(s));
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(Distinctiveness, AnkleBestOverallChestBestForClimbing) {
  // The Fig. 2 structure the scheduler exploits.
  double chest = 0, ankle = 0, wrist = 0;
  for (int a = 0; a < kNumActivityKinds; ++a) {
    chest += distinctiveness(static_cast<Activity>(a), SensorLocation::Chest);
    ankle += distinctiveness(static_cast<Activity>(a), SensorLocation::LeftAnkle);
    wrist += distinctiveness(static_cast<Activity>(a), SensorLocation::RightWrist);
  }
  EXPECT_GT(ankle, chest);
  EXPECT_GT(chest, wrist);
  EXPECT_GT(distinctiveness(Activity::Climbing, SensorLocation::Chest),
            distinctiveness(Activity::Climbing, SensorLocation::LeftAnkle));
}

TEST(ConfusableNeighbor, NeverSelf) {
  for (int a = 0; a < kNumActivityKinds; ++a) {
    for (int s = 0; s < kNumSensors; ++s) {
      EXPECT_NE(confusable_neighbor(static_cast<Activity>(a),
                                    static_cast<SensorLocation>(s)),
                static_cast<Activity>(a));
    }
  }
}

TEST(ConfusableNeighbor, LocationDependent) {
  // Decorrelated error directions across sensors (§DESIGN): at least one
  // activity must have different confusion targets at different locations.
  bool differs = false;
  for (int a = 0; a < kNumActivityKinds; ++a) {
    const auto act = static_cast<Activity>(a);
    if (confusable_neighbor(act, SensorLocation::Chest) !=
        confusable_neighbor(act, SensorLocation::LeftAnkle)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(NoiseSigma, WristNoisiest) {
  EXPECT_GT(noise_sigma(SensorLocation::RightWrist),
            noise_sigma(SensorLocation::Chest));
  EXPECT_GT(noise_sigma(SensorLocation::Chest),
            noise_sigma(SensorLocation::LeftAnkle));
}

TEST(SharedStyle, DrawRespectsAmbiguityProbability) {
  const auto spec = dataset_spec(DatasetKind::MHealthLike);
  util::Rng rng(5);
  int ambiguous = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (draw_shared_style(spec, Activity::Jogging, rng, 0.25).ambiguous_with) {
      ++ambiguous;
    }
  }
  EXPECT_NEAR(ambiguous / static_cast<double>(n), 0.25, 0.02);
}

TEST(SharedStyle, AmbiguousPartnerNeverSelf) {
  const auto spec = dataset_spec(DatasetKind::MHealthLike);
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto s = draw_shared_style(spec, Activity::Cycling, rng, 1.0);
    ASSERT_TRUE(s.ambiguous_with.has_value());
    EXPECT_NE(*s.ambiguous_with, Activity::Cycling);
    EXPECT_GT(s.ambiguity_mix, 0.0);
    EXPECT_LT(s.ambiguity_mix, 1.0);
  }
}

TEST_F(SignalModelTest, SharedStyleCorrelatesAcrossSensors) {
  // With the same deep-ambiguity style, all sensors' windows shift; with a
  // clean style they stay near the clean prototype. Compare chest windows
  // under the two styles.
  SharedStyle clean;
  SharedStyle shuffled = clean;
  shuffled.ambiguous_with = Activity::Running;
  shuffled.ambiguity_mix = 0.6;
  util::Rng r1(7), r2(7);
  const auto w_clean = model.window(Activity::Jogging, SensorLocation::Chest, 0.0, r1, clean);
  const auto w_amb = model.window(Activity::Jogging, SensorLocation::Chest, 0.0, r2, shuffled);
  double diff = 0.0;
  for (std::size_t i = 0; i < w_clean.size(); ++i) {
    diff += std::fabs(w_clean[i] - w_amb[i]);
  }
  EXPECT_GT(diff / static_cast<double>(w_clean.size()), 0.05);
}

TEST_F(SignalModelTest, UserAmplitudeScaleChangesMagnitude) {
  UserProfile strong = reference_user();
  strong.name = "strong";
  strong.amp_scale = 2.0;
  const SignalModel strong_model(spec, strong);
  SharedStyle style;
  util::Rng r1(8), r2(8);
  const auto w1 = model.window(Activity::Running, SensorLocation::LeftAnkle, 0.0, r1, style);
  const auto w2 = strong_model.window(Activity::Running, SensorLocation::LeftAnkle, 0.0, r2, style);
  // Compare AC energy.
  auto ac_power = [](const nn::Tensor& w) {
    double mean = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) mean += w[i];
    mean /= static_cast<double>(w.size());
    double p = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) p += (w[i] - mean) * (w[i] - mean);
    return p;
  };
  EXPECT_GT(ac_power(w2), 1.5 * ac_power(w1));
}

TEST(UserProfile, RandomUsersVaryButBounded) {
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto u = random_user(i, rng);
    EXPECT_GE(u.freq_scale, 0.75);
    EXPECT_LE(u.freq_scale, 1.25);
    EXPECT_GE(u.amp_scale, 0.6);
    EXPECT_LE(u.amp_scale, 1.4);
    EXPECT_GE(u.noise_scale, 0.8);
    EXPECT_LE(u.noise_scale, 1.6);
    EXPECT_EQ(u.name, "user" + std::to_string(i));
  }
}

TEST(SignalModel, RejectsWrongChannelCount) {
  auto spec = dataset_spec(DatasetKind::MHealthLike);
  spec.channels = 4;
  EXPECT_THROW(SignalModel(spec, reference_user()), std::invalid_argument);
}

}  // namespace
}  // namespace origin::data
