#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace origin::core {
namespace {

TEST(Schedule, ValidatesCycle) {
  EXPECT_THROW(ExtendedRoundRobin(0), std::invalid_argument);
  EXPECT_THROW(ExtendedRoundRobin(4), std::invalid_argument);
  EXPECT_THROW(ExtendedRoundRobin(-3), std::invalid_argument);
  EXPECT_NO_THROW(ExtendedRoundRobin(3));
  EXPECT_NO_THROW(ExtendedRoundRobin(12));
}

TEST(Schedule, RR3EverySlotIsOpportunity) {
  ExtendedRoundRobin rr(3);
  EXPECT_EQ(rr.gap(), 1);
  for (int s = 0; s < 9; ++s) {
    EXPECT_TRUE(rr.is_opportunity(s));
  }
  EXPECT_EQ(rr.default_sensor(0), data::SensorLocation::Chest);
  EXPECT_EQ(rr.default_sensor(1), data::SensorLocation::RightWrist);
  EXPECT_EQ(rr.default_sensor(2), data::SensorLocation::LeftAnkle);
  EXPECT_EQ(rr.default_sensor(3), data::SensorLocation::Chest);
}

TEST(Schedule, RR12MatchesFig3) {
  ExtendedRoundRobin rr(12);
  EXPECT_EQ(rr.gap(), 4);
  // Opportunities at 0, 4, 8 with the chest/wrist/ankle rotation, no-ops
  // in between — exactly Fig. 3's RR12 row.
  EXPECT_TRUE(rr.is_opportunity(0));
  EXPECT_FALSE(rr.is_opportunity(1));
  EXPECT_FALSE(rr.is_opportunity(2));
  EXPECT_FALSE(rr.is_opportunity(3));
  EXPECT_TRUE(rr.is_opportunity(4));
  EXPECT_TRUE(rr.is_opportunity(8));
  EXPECT_TRUE(rr.is_opportunity(12));
  EXPECT_EQ(rr.default_sensor(0), data::SensorLocation::Chest);
  EXPECT_EQ(rr.default_sensor(4), data::SensorLocation::RightWrist);
  EXPECT_EQ(rr.default_sensor(8), data::SensorLocation::LeftAnkle);
  EXPECT_EQ(rr.default_sensor(12), data::SensorLocation::Chest);
}

TEST(Schedule, OpportunityIndex) {
  ExtendedRoundRobin rr(6);
  EXPECT_EQ(rr.opportunity_index(0), 0);
  EXPECT_EQ(rr.opportunity_index(1), -1);
  EXPECT_EQ(rr.opportunity_index(2), 1);
  EXPECT_EQ(rr.opportunity_index(4), 2);
  EXPECT_EQ(rr.opportunity_index(6), 0);
}

TEST(Schedule, DefaultSensorOnNoopThrows) {
  ExtendedRoundRobin rr(6);
  EXPECT_THROW(rr.default_sensor(1), std::logic_error);
}

TEST(Schedule, NegativeSlotThrows) {
  ExtendedRoundRobin rr(3);
  EXPECT_THROW(rr.is_opportunity(-1), std::invalid_argument);
}

TEST(Schedule, UnrollReadable) {
  ExtendedRoundRobin rr(6);
  const auto u = rr.unroll(6);
  ASSERT_EQ(u.size(), 6u);
  EXPECT_EQ(u[0], "chest");
  EXPECT_EQ(u[1], "no-op");
  EXPECT_EQ(u[2], "right_wrist");
  EXPECT_EQ(u[4], "left_ankle");
  EXPECT_THROW(rr.unroll(-1), std::invalid_argument);
}

TEST(Schedule, Name) {
  EXPECT_EQ(ExtendedRoundRobin(9).name(), "RR9");
}

// Property sweep across all paper cycle lengths.
class SchedulePolicy : public ::testing::TestWithParam<int> {};

TEST_P(SchedulePolicy, EachSensorOncePerCycle) {
  const int k = GetParam();
  ExtendedRoundRobin rr(k);
  std::array<int, data::kNumSensors> counts{};
  for (int s = 0; s < k; ++s) {
    if (rr.is_opportunity(s)) {
      ++counts[static_cast<std::size_t>(rr.default_sensor(s))];
    }
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST_P(SchedulePolicy, NoopCountMatches) {
  const int k = GetParam();
  ExtendedRoundRobin rr(k);
  int noops = 0;
  for (int s = 0; s < k; ++s) {
    if (!rr.is_opportunity(s)) ++noops;
  }
  EXPECT_EQ(noops, k - 3);
}

TEST_P(SchedulePolicy, OpportunitiesEvenlySpaced) {
  const int k = GetParam();
  ExtendedRoundRobin rr(k);
  int last = -1;
  for (int s = 0; s < 3 * k; ++s) {
    if (rr.is_opportunity(s)) {
      if (last >= 0) {
        EXPECT_EQ(s - last, rr.gap());
      }
      last = s;
    }
  }
}

TEST_P(SchedulePolicy, HarvestSlotsPerAttemptIsCycle) {
  const int k = GetParam();
  EXPECT_EQ(ExtendedRoundRobin(k).harvest_slots_per_attempt(), k);
}

INSTANTIATE_TEST_SUITE_P(PaperCycles, SchedulePolicy,
                         ::testing::Values(3, 6, 9, 12, 15, 24));

}  // namespace
}  // namespace origin::core
